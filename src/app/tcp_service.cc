#include "app/tcp_service.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "app/cluster.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace hermes::app
{

using net::ClientReplyMsg;
using net::ClientRequestMsg;

namespace
{

TimeNs
steadyNowNs()
{
    using namespace std::chrono;
    return duration_cast<nanoseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

TcpKvService::TcpKvService(Protocol protocol, size_t nodes,
                           ReplicaOptions options, net::TcpConfig config,
                           size_t num_shards, uint32_t shard_id)
    : cluster_(nodes, config), protocol_(protocol),
      baseOptions_(std::move(options)),
      numShards_(num_shards ? num_shards : 1), shardId_(shard_id)
{
    hermes_assert(shardId_ < numShards_);
    net::registerClientCodecs();
    if (!baseOptions_.wal.path.empty())
        std::filesystem::create_directories(baseOptions_.wal.path);
    membership::MembershipView initial = membership::initialView(nodes);
    for (size_t i = 0; i < nodes; ++i) {
        auto id = static_cast<NodeId>(i);
        replicas_.push_back(makeReplica(protocol_, cluster_.env(id),
                                        initial, optionsFor(id)));
        cluster_.attach(id, replicas_.back().get());
        cluster_.setClientHandler(
            id, [this, id](net::ClientConnId conn,
                           std::shared_ptr<net::Message> msg) {
                handleClientFrame(id, conn, msg);
            });
    }
}

ReplicaOptions
TcpKvService::optionsFor(NodeId id) const
{
    ReplicaOptions options = baseOptions_;
    if (!options.wal.path.empty()) {
        // baseOptions_.wal.path is the group's log DIRECTORY; each
        // replica owns one file in it, so a restarted replica replays
        // its own records and nobody else's.
        options.wal.path += "/replica" + std::to_string(id) + ".wal";
        options.wal.shard = shardId_;
    }
    return options;
}

TcpKvService::~TcpKvService()
{
    stop();
}

void
TcpKvService::start()
{
    cluster_.start();
}

void
TcpKvService::stop()
{
    cluster_.stop();
}

void
TcpKvService::drain()
{
    cluster_.drain();
}

void
TcpKvService::restartReplica(NodeId id)
{
    hermes_assert(protocol_ == Protocol::Hermes);
    hermes_assert(!baseOptions_.wal.path.empty());
    if (cluster_.running(id))
        cluster_.crash(id);

    // Lowest-id live survivor: stands in for the RM's view-change
    // proposer and serves as the state-transfer source.
    NodeId source = kInvalidNode;
    for (size_t i = 0; i < replicas_.size(); ++i) {
        auto n = static_cast<NodeId>(i);
        if (n != id && cluster_.running(n)) {
            source = n;
            break;
        }
    }
    hermes_assert(source != kInvalidNode);
    Epoch epoch = 0;
    cluster_.runOn(source, [&] {
        epoch = replicas_[source]->hermes()->view().epoch;
    });

    // Epoch+1, without the crashed node: Hermes commits need an ACK
    // from every live view member, so the survivors must drop it or
    // every write in the group stalls until the rejoin completes.
    membership::MembershipView without{epoch + 1, {}};
    for (size_t i = 0; i < replicas_.size(); ++i) {
        auto n = static_cast<NodeId>(i);
        if (n != id && cluster_.running(n))
            without.live.push_back(n);
    }
    for (NodeId n : without.live)
        cluster_.runOn(n, [&] { replicas_[n]->injectView(without); });

    // Destroy the old handle BEFORE building the new one: its dtor
    // clears the loop Env's flush hook (which would otherwise erase the
    // replacement's registration) and flushes + closes the old WAL
    // before the new one scans the same file. The loop thread is down,
    // so constructing against its Env from this thread is safe. Built
    // with the view that excludes it, the fresh replica starts as a
    // shadow and replays its WAL in the ctor: surviving records restore
    // as Invalid at their original timestamps, healed below by the
    // state transfer.
    replicas_[id].reset();
    replicas_[id] =
        makeReplica(protocol_, cluster_.env(id), without, optionsFor(id));
    cluster_.attach(id, replicas_[id].get());
    // Re-dial the full mesh and run the replica's start(); returns once
    // the loop services injected calls again.
    cluster_.restart(id);

    // Epoch+2 re-admits the node, then the reliable m-update-before-
    // stream ordering of §3.4: sync starts only after the extended view
    // is in everywhere.
    membership::MembershipView with{epoch + 2, without.live};
    with.live.push_back(id);
    std::sort(with.live.begin(), with.live.end());
    for (NodeId n : with.live)
        cluster_.runOn(n, [&] { replicas_[n]->injectView(with); });
    cluster_.runOn(id, [&] {
        replicas_[id]->hermes()->startShadowSync(source);
    });
}

void
TcpKvService::setDeploymentMap(ShardAddressMap map)
{
    hermes_assert(map.size() == numShards_);
    deploymentMap_ = std::move(map);
}

ShardAddressMap
TcpKvService::advertisedMap() const
{
    if (!deploymentMap_.empty())
        return deploymentMap_;
    // Standalone group: all this service can vouch for is itself.
    ShardAddressMap map(numShards_);
    ShardPorts &own = map.at(shardId_);
    for (size_t i = 0; i < replicas_.size(); ++i)
        own.push_back(cluster_.portOf(static_cast<NodeId>(i)));
    return map;
}

void
TcpKvService::handleClientFrame(NodeId node, net::ClientConnId conn,
                                const std::shared_ptr<net::Message> &msg)
{
    if (msg->type() != net::MsgType::ClientRequest)
        return;
    auto &request = static_cast<ClientRequestMsg &>(*msg);
    ReplicaHandle &replica = *replicas_[node];
    uint64_t req_id = request.reqId;
    uint32_t shard = request.shard;

    // Every reply carries the serving group's shard map (count + id);
    // HELLO and WrongShard replies additionally carry the full address
    // map, which is what the client re-resolves its routing from.
    auto stampMap = [this](ClientReplyMsg &reply) {
        reply.mapShards = static_cast<uint32_t>(numShards_);
        reply.mapShard = shardId_;
    };

    // HELLO negotiation: no register op — the deployment map plus the
    // session's granted credit window (the transport clamped whatever
    // the client's hello requested; we are running on the serving
    // node's loop thread, so reading the transport state is safe).
    if (request.op == ClientRequestMsg::Op::Hello) {
        ClientReplyMsg reply;
        reply.reqId = req_id;
        reply.shard = shard;
        stampMap(reply);
        reply.mapPorts = advertisedMap();
        reply.credits = cluster_.sessionCreditsOf(node, conn);
        cluster_.replyToClient(node, conn, reply);
        return;
    }

    // Shard-map agreement checks, cheapest first and every one BEFORE
    // the key is hashed or anything is indexed: (1) the client's shard
    // *count* must agree with ours — a stale or garbage count (0, or
    // another deployment generation) would otherwise alias arbitrary
    // routes; (2) the stamp must name this group's shard; (3) the key
    // must hash here under the agreed map. A client failing any of them
    // gets an explicit rejection carrying the full address map — never
    // an assert, and never a silently split history.
    if (request.numShards != numShards_ || shard != shardId_
            || shardOfKey(request.key, numShards_) != shardId_) {
        ClientReplyMsg reply;
        reply.reqId = req_id;
        reply.shard = shard;
        reply.ok = false;
        reply.status = ClientReplyMsg::Status::WrongShard;
        stampMap(reply);
        reply.mapPorts = advertisedMap();
        cluster_.replyToClient(node, conn, reply);
        return;
    }

    switch (request.op) {
      case ClientRequestMsg::Op::Read:
        replica.read(request.key,
                     [this, node, conn, req_id, shard,
                      stampMap](const Value &value) {
                         ClientReplyMsg reply;
                         reply.reqId = req_id;
                         reply.shard = shard;
                         stampMap(reply);
                         reply.value = value;
                         cluster_.replyToClient(node, conn, reply);
                     });
        break;
      case ClientRequestMsg::Op::Write:
        // request.value is a ValueRef aliasing the transport's receive
        // slab: handing it down is a refcount bump, and the protocol's
        // own INV/chain/propose encode gathers from the same buffer.
        replica.write(request.key, request.value,
                      [this, node, conn, req_id, shard, stampMap] {
                          ClientReplyMsg reply;
                          reply.reqId = req_id;
                          reply.shard = shard;
                          stampMap(reply);
                          cluster_.replyToClient(node, conn, reply);
                      });
        break;
      case ClientRequestMsg::Op::Cas:
        replica.cas(request.key, request.expected, request.value,
                    [this, node, conn, req_id, shard,
                     stampMap](bool ok, const Value &seen) {
                        ClientReplyMsg reply;
                        reply.reqId = req_id;
                        reply.ok = ok;
                        reply.shard = shard;
                        stampMap(reply);
                        reply.value = seen;
                        cluster_.replyToClient(node, conn, reply);
                    });
        break;
      case ClientRequestMsg::Op::Hello:
        break; // handled above
    }
}

// ---------------------------------------------------------------------
// ShardedTcpDeployment
// ---------------------------------------------------------------------

ShardedTcpDeployment::ShardedTcpDeployment(Protocol protocol, size_t shards,
                                           size_t replicas_per_shard,
                                           ReplicaOptions options,
                                           net::TcpConfig config)
    : replicasPerShard_(replicas_per_shard)
{
    hermes_assert(shards > 0 && replicas_per_shard > 0);
    for (size_t s = 0; s < shards; ++s) {
        net::TcpConfig group = config;
        group.basePort = static_cast<uint16_t>(
            config.basePort + s * replicas_per_shard);
        // Per-shard WAL subdirectory under the deployment's directory;
        // the group then gives each replica its own file inside it.
        ReplicaOptions group_options = options;
        if (!options.wal.path.empty())
            group_options.wal.path += "/shard" + std::to_string(s);
        groups_.push_back(std::make_unique<TcpKvService>(
            protocol, replicas_per_shard, std::move(group_options), group,
            shards, static_cast<uint32_t>(s)));
    }
    map_.resize(shards);
    for (size_t s = 0; s < shards; ++s) {
        for (size_t r = 0; r < replicas_per_shard; ++r)
            map_[s].push_back(groups_[s]->portOf(static_cast<NodeId>(r)));
    }
    for (auto &group : groups_)
        group->setDeploymentMap(map_);
}

void
ShardedTcpDeployment::start()
{
    for (auto &group : groups_)
        group->start();
}

void
ShardedTcpDeployment::stop()
{
    for (auto &group : groups_)
        group->stop();
}

// ---------------------------------------------------------------------
// KvClient
// ---------------------------------------------------------------------

KvClient::KvClient(uint16_t seed_port, size_t num_shards)
    : seedPort_(seed_port),
      seed_(std::make_unique<net::TcpClient>(seed_port)),
      numShards_(num_shards)
{
    net::registerClientCodecs();
    if (num_shards == 0) {
        // HELLO negotiation: adopt the deployment's map up front. A
        // service that never answers leaves us with the unsharded
        // default (and WrongShard replies will teach us later).
        numShards_ = 1;
        resolveMapFromSeed();
    }
}

bool
KvClient::connected() const
{
    return seed_ && seed_->connected();
}

void
KvClient::resolveMapFromSeed()
{
    if (!connected())
        return;
    ClientRequestMsg hello;
    hello.op = ClientRequestMsg::Op::Hello;
    hello.numShards = static_cast<uint32_t>(numShards_);
    auto reply = callOn(*seed_, hello, 2_s);
    if (reply)
        adoptMap(static_cast<ClientReplyMsg &>(*reply), /*via_seed=*/true);
}

bool
KvClient::adoptMap(const ClientReplyMsg &reply, bool via_seed)
{
    if (reply.mapShards == 0)
        return false; // a service that advertises nothing teaches nothing
    bool learned = false;
    if (reply.mapShards != numShards_) {
        numShards_ = reply.mapShards;
        // Cached per-shard connections were routed by the old map; a
        // shard id means something different now. That includes the
        // seed's remembered shard id: under the new count "shard
        // seedShard_" names a different slice of the key space, so
        // keeping it would route that slice to the seed no matter who
        // owns it. Invalidate and re-learn (the via_seed branch below
        // re-learns it immediately when the teaching reply came from
        // the seed itself).
        conns_.clear();
        seedShardKnown_ = false;
        learned = true;
    }
    if (via_seed && (!seedShardKnown_ || seedShard_ != reply.mapShard)) {
        seedShardKnown_ = true;
        seedShard_ = reply.mapShard;
        learned = true;
    }
    if (!reply.mapPorts.empty()) {
        if (addrs_.size() != reply.mapPorts.size()) {
            addrs_.resize(reply.mapPorts.size());
            learned = true;
        }
        for (size_t s = 0; s < reply.mapPorts.size(); ++s) {
            // Merge: a standalone group advertises only its own entry;
            // keep addresses other replies taught us.
            if (!reply.mapPorts[s].empty()
                    && reply.mapPorts[s] != addrs_[s]) {
                addrs_[s] = reply.mapPorts[s];
                learned = true;
            }
        }
    }
    return learned;
}

net::TcpClient *
KvClient::connectionFor(uint32_t shard, TimeNs deadline)
{
    if (seedShardKnown_ && shard == seedShard_ && connected())
        return seed_.get();
    auto it = conns_.find(shard);
    if (it != conns_.end() && it->second->connected())
        return it->second.get();
    conns_.erase(shard);
    if (shard < addrs_.size()) {
        for (uint16_t port : addrs_[shard]) {
            if (port == seedPort_ && connected()) {
                // The seed turns out to be a replica of this shard.
                seedShardKnown_ = true;
                seedShard_ = shard;
                return seed_.get();
            }
            // Few dial attempts: the deployment is already up when a
            // map advertises it, so a refusing port means a dead
            // replica — fail over to the next one fast. Failed attempts
            // sleep on the jittered exponential backoff (~5/10/20 ms
            // gaps at this depth), so size the retry count to the op's
            // remaining budget and stop dialing entirely once it is
            // spent — the seed fallback below still answers (with
            // WrongShard) within whatever time is left.
            TimeNs remaining = deadline - steadyNowNs();
            if (remaining <= 0)
                break;
            int attempts = static_cast<int>(
                std::min<TimeNs>(3, remaining / 20_ms + 1));
            auto conn = std::make_unique<net::TcpClient>(port, attempts);
            if (conn->connected()) {
                net::TcpClient *raw = conn.get();
                conns_[shard] = std::move(conn);
                return raw;
            }
        }
    }
    // No (live) address for the shard: fall back to the seed, whose
    // WrongShard rejection carries the map that teaches us the route.
    return connected() ? seed_.get() : nullptr;
}

std::shared_ptr<net::Message>
KvClient::callOn(net::TcpClient &conn, ClientRequestMsg &request,
                 DurationNs timeout)
{
    request.reqId = nextReqId_++;
    auto reply = conn.call(request, timeout, request.reqId);
    if (!reply || reply->type() != net::MsgType::ClientReply)
        return nullptr;
    return reply;
}

std::shared_ptr<net::Message>
KvClient::callRerouting(ClientRequestMsg &request, DurationNs timeout)
{
    lastStatus_ = ClientReplyMsg::Status::Ok;
    std::shared_ptr<net::Message> reply;
    // ONE deadline for the whole op, not one per attempt: redials and
    // reroute rounds all burn the same budget, so an op bounded at
    // `timeout` cannot take kMaxRouteAttempts × timeout wall time when
    // the deployment keeps redirecting it.
    const TimeNs deadline = steadyNowNs() + timeout;
    for (int attempt = 0; attempt < kMaxRouteAttempts; ++attempt) {
        TimeNs remaining = deadline - steadyNowNs();
        if (remaining <= 0)
            return nullptr; // op budget spent mid-reroute
        size_t shards = numShards_ ? numShards_ : 1;
        uint32_t shard = shardOfKey(request.key, shards);
        request.shard = shard;
        request.numShards = static_cast<uint32_t>(shards);
        net::TcpClient *conn = connectionFor(shard, deadline);
        if (!conn)
            return nullptr; // no route anywhere (seed gone too)
        remaining = deadline - steadyNowNs();
        if (remaining <= 0)
            return nullptr; // dialing consumed the budget
        bool via_seed = conn == seed_.get();
        reply = callOn(*conn, request, remaining);
        if (!reply) {
            // Timeout or disconnect. Drop a per-shard connection so the
            // next op re-dials (maybe a different replica); the seed is
            // kept — it is the bootstrap of last resort.
            if (!via_seed)
                conns_.erase(shard);
            return nullptr;
        }
        auto &r = static_cast<ClientReplyMsg &>(*reply);
        bool learned = adoptMap(r, via_seed);
        if (r.status != ClientReplyMsg::Status::WrongShard) {
            lastStatus_ = r.status;
            return reply;
        }
        // WrongShard: re-resolve under the freshly adopted map and only
        // loop when that yields a usable route we have not just tried —
        // the reroute targets the owning shard's actual address, it is
        // not a blind same-socket retry.
        size_t new_shards = numShards_ ? numShards_ : 1;
        uint32_t new_shard = shardOfKey(request.key, new_shards);
        bool reachable =
            (seedShardKnown_ && new_shard == seedShard_)
            || (new_shard < addrs_.size() && !addrs_[new_shard].empty());
        if (!reachable) {
            // Dead end by the service's own map: no address to go to.
            lastStatus_ = ClientReplyMsg::Status::WrongShard;
            return reply;
        }
        if (!learned && new_shard == shard) {
            // Nothing new adopted and the same route re-resolved: the
            // reachable owner keeps rejecting us (disagreeing services);
            // retrying the identical request cannot converge.
            lastStatus_ = ClientReplyMsg::Status::WrongShard;
            return reply;
        }
    }
    lastStatus_ = ClientReplyMsg::Status::RetriesExhausted;
    return reply;
}

std::optional<Value>
KvClient::read(Key key, DurationNs timeout)
{
    ClientRequestMsg request;
    request.op = ClientRequestMsg::Op::Read;
    request.key = key;
    auto reply = callRerouting(request, timeout);
    if (!reply || lastStatus_ != ClientReplyMsg::Status::Ok)
        return std::nullopt;
    return static_cast<ClientReplyMsg &>(*reply).value.str();
}

bool
KvClient::write(Key key, Value value, DurationNs timeout)
{
    ClientRequestMsg request;
    request.op = ClientRequestMsg::Op::Write;
    request.key = key;
    request.value = std::move(value);
    auto reply = callRerouting(request, timeout);
    return reply && lastStatus_ == ClientReplyMsg::Status::Ok;
}

std::optional<bool>
KvClient::cas(Key key, Value expected, Value desired, DurationNs timeout)
{
    auto observed =
        casObserve(key, std::move(expected), std::move(desired), timeout);
    if (!observed)
        return std::nullopt;
    return observed->first;
}

std::optional<std::pair<bool, Value>>
KvClient::casObserve(Key key, Value expected, Value desired,
                     DurationNs timeout)
{
    ClientRequestMsg request;
    request.op = ClientRequestMsg::Op::Cas;
    request.key = key;
    request.value = std::move(desired);
    request.expected = std::move(expected);
    auto reply = callRerouting(request, timeout);
    if (!reply || lastStatus_ != ClientReplyMsg::Status::Ok)
        return std::nullopt;
    auto &r = static_cast<ClientReplyMsg &>(*reply);
    return std::make_pair(r.ok, r.value.str());
}

// ---------------------------------------------------------------------
// KvSessionClient
// ---------------------------------------------------------------------

KvSessionClient::KvSessionClient(uint16_t seed_port, uint32_t credits,
                                 size_t num_shards)
    : seedPort_(seed_port), requestedCredits_(credits)
{
    net::registerClientCodecs();
    if (num_shards > 0)
        numShards_ = num_shards;
    // Generous dial budget: the seed is the bootstrap, a service still
    // binding deserves the wait. dial() pipelines the session's HELLO,
    // so the window grant and the shard map stream in with the first
    // replies — nothing here blocks on them.
    seed_ = dial(seed_port, 100);
}

KvSessionClient::~KvSessionClient()
{
    for (const ConnPtr &conn : conns_)
        if (conn->fd >= 0)
            close(conn->fd);
}

bool
KvSessionClient::connected() const
{
    return seed_ && seed_->alive;
}

KvSessionClient::ConnPtr
KvSessionClient::dial(uint16_t port, int connect_attempts)
{
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    bool ok = false;
    net::DialBackoff backoff;
    for (int attempt = 0; attempt < connect_attempts; ++attempt) {
        net::DialBackoff::noteDialAttempt();
        if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) == 0) {
            ok = true;
            break;
        }
        // Jittered exponential pacing, no sleep after the final
        // failure: a held-down shard costs a bounded number of dials,
        // not an immediate-redial hammer.
        if (attempt + 1 < connect_attempts) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff.nextDelayMs()));
        }
    }
    if (ok) {
        // The transport hello's third word is the requested credit
        // window; the server clamps it and reports the grant in the
        // HELLO reply we pipeline right below.
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        uint8_t hello[12];
        leStore32(hello, net::kHelloMagic);
        leStore32(hello + 4, net::kHelloClient);
        leStore32(hello + 8, requestedCredits_);
        ok = write(fd, hello, sizeof(hello))
             == static_cast<ssize_t>(sizeof(hello));
    }
    if (!ok) {
        close(fd);
        return nullptr;
    }
    int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    auto conn = std::make_shared<SessionConn>();
    conn->fd = fd;
    conn->port = port;
    conn->alive = true;
    // Believed window until the HELLO grant answers: what we asked for,
    // or optimistic when we asked for the default. Overshooting is safe
    // by design — the server stops reading an over-limit session and
    // the overflow waits in kernel buffers.
    conn->window = windowOverridden_
                       ? requestedCredits_
                       : (requestedCredits_ ? requestedCredits_ : 256);
    conns_.push_back(conn);
    sendHello(conn);
    return conn;
}

void
KvSessionClient::sendHello(const ConnPtr &conn)
{
    PendingOp hello;
    hello.op = ClientRequestMsg::Op::Hello;
    hello.internal = true;
    hello.deadline = steadyNowNs() + 5_s;
    hello.conn = conn;
    uint64_t token = nextReqId_++;
    ops_.emplace(token, std::move(hello));
    enqueue(token, conn);
}

KvSessionClient::ConnPtr
KvSessionClient::connFor(uint32_t shard)
{
    auto it = route_.find(shard);
    if (it != route_.end() && it->second->alive)
        return it->second;
    route_.erase(shard);
    if (shard < addrs_.size()) {
        for (uint16_t port : addrs_[shard]) {
            // A connection to that replica may already exist (shards
            // sharing a socket after a map change, or the seed itself):
            // sessions multiplex, never dial a port twice.
            for (const ConnPtr &conn : conns_) {
                if (conn->alive && conn->port == port) {
                    route_[shard] = conn;
                    return conn;
                }
            }
            // Few dial attempts: an advertised address that refuses is
            // a dead replica — fail over to the next one fast.
            if (ConnPtr conn = dial(port, 3)) {
                route_[shard] = conn;
                return conn;
            }
        }
    }
    // No (live) address: fall back to the seed — uncached, so the next
    // op re-resolves — whose WrongShard reply teaches the route.
    return connected() ? seed_ : nullptr;
}

uint64_t
KvSessionClient::readAsync(Key key, DurationNs timeout)
{
    PendingOp op;
    op.op = ClientRequestMsg::Op::Read;
    op.key = key;
    op.deadline = steadyNowNs() + timeout;
    return issue(std::move(op));
}

uint64_t
KvSessionClient::writeAsync(Key key, Value value, DurationNs timeout)
{
    PendingOp op;
    op.op = ClientRequestMsg::Op::Write;
    op.key = key;
    op.value = std::move(value);
    op.deadline = steadyNowNs() + timeout;
    return issue(std::move(op));
}

uint64_t
KvSessionClient::casAsync(Key key, Value expected, Value desired,
                          DurationNs timeout)
{
    PendingOp op;
    op.op = ClientRequestMsg::Op::Cas;
    op.key = key;
    op.expected = std::move(expected);
    op.value = std::move(desired);
    op.deadline = steadyNowNs() + timeout;
    return issue(std::move(op));
}

uint64_t
KvSessionClient::issue(PendingOp op)
{
    uint64_t token = nextReqId_++;
    uint32_t shard =
        shardOfKey(op.key, numShards_ ? numShards_ : 1);
    ConnPtr conn = connFor(shard);
    op.conn = conn;
    ops_.emplace(token, std::move(op));
    if (!conn) {
        // No route anywhere (seed gone too): fail it immediately, the
        // token still redeems a (failed) result.
        complete(token, OpResult{ClientReplyMsg::Status::WrongShard,
                                 false, false, {}});
        return token;
    }
    enqueue(token, conn);
    return token;
}

void
KvSessionClient::enqueue(uint64_t token, const ConnPtr &conn)
{
    conn->sendq.push_back(token);
    pumpSendq(conn);
    flushTx(conn);
}

void
KvSessionClient::pumpSendq(const ConnPtr &conn)
{
    while (!conn->sendq.empty()
           && (conn->window == 0 || conn->inflight < conn->window)) {
        uint64_t token = conn->sendq.front();
        conn->sendq.pop_front();
        auto it = ops_.find(token);
        if (it == ops_.end())
            continue; // expired or rerouted while queued
        encodeRequest(token, it->second, *conn);
        ++conn->inflight;
    }
}

void
KvSessionClient::encodeRequest(uint64_t token, const PendingOp &op,
                               SessionConn &conn)
{
    // Stamp the routing at SEND time, under the map the client believes
    // right now — a reply that proves the stamp stale comes back as
    // WrongShard and reroutes this op individually.
    size_t shards = numShards_ ? numShards_ : 1;
    ClientRequestMsg msg;
    msg.op = op.op;
    msg.reqId = token;
    msg.key = op.key;
    msg.shard = shardOfKey(op.key, shards);
    msg.numShards = static_cast<uint32_t>(shards);
    msg.value = op.value;
    msg.expected = op.expected;

    // One message per frame: u32 frame length, then a batch of count 1
    // (kind u8, count u16, u32 message length, message bytes) — the
    // exact client framing TcpClient speaks.
    std::vector<uint8_t> body;
    net::encodeMessage(msg, body);
    size_t frame_len = 1 + 2 + 4 + body.size();
    size_t base = conn.tx.size();
    conn.tx.resize(base + 4 + 7);
    leStore32(conn.tx.data() + base, static_cast<uint32_t>(frame_len));
    conn.tx[base + 4] = net::kFrameBatch;
    leStore16(conn.tx.data() + base + 5, 1);
    leStore32(conn.tx.data() + base + 7,
              static_cast<uint32_t>(body.size()));
    conn.tx.insert(conn.tx.end(), body.begin(), body.end());
}

void
KvSessionClient::flushTx(const ConnPtr &conn)
{
    if (!conn->alive)
        return;
    size_t written = 0;
    while (written < conn->tx.size()) {
        // MSG_NOSIGNAL: a crashed shard's socket must surface EPIPE to
        // markDead(), not kill the process with SIGPIPE.
        ssize_t n = send(conn->fd, conn->tx.data() + written,
                         conn->tx.size() - written, MSG_NOSIGNAL);
        if (n > 0) {
            written += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break; // kernel buffer full: keep the tail for later
        markDead(conn);
        return;
    }
    conn->tx.erase(conn->tx.begin(),
                   conn->tx.begin() + static_cast<long>(written));
}

void
KvSessionClient::readAndParse(const ConnPtr &conn)
{
    if (!conn->alive)
        return;
    uint8_t buf[65536];
    for (;;) {
        ssize_t n = read(conn->fd, buf, sizeof(buf));
        if (n > 0) {
            conn->rx.insert(conn->rx.end(), buf, buf + n);
            if (static_cast<size_t>(n) == sizeof(buf))
                continue;
            break;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        markDead(conn);
        return;
    }

    size_t off = 0;
    while (conn->rx.size() - off >= 4) {
        uint32_t frame_len = leLoad32(conn->rx.data() + off);
        if (conn->rx.size() - off - 4 < frame_len)
            break;
        BufReader reader(conn->rx.data() + off + 4, frame_len);
        off += 4 + frame_len;
        if (reader.getU8() != net::kFrameBatch)
            continue; // client links carry no credit frames
        uint16_t count = reader.getU16();
        for (uint16_t i = 0; i < count && reader.ok(); ++i) {
            uint32_t msg_len = reader.getU32();
            if (!reader.ok() || reader.remaining() < msg_len)
                break;
            // No pin: rx is compacted below, values deep-copy out.
            auto msg = net::decodeMessage(reader.cursor(), msg_len);
            reader.skip(msg_len);
            if (msg && msg->type() == net::MsgType::ClientReply)
                handleReply(conn,
                            static_cast<const ClientReplyMsg &>(*msg));
            if (!conn->alive)
                return; // handleReply noticed a dead conn underneath
        }
    }
    conn->rx.erase(conn->rx.begin(),
                   conn->rx.begin() + static_cast<long>(off));
}

void
KvSessionClient::adoptMap(const ClientReplyMsg &reply)
{
    if (reply.mapShards == 0)
        return;
    if (reply.mapShards != numShards_) {
        numShards_ = reply.mapShards;
        // Shard ids mean something different under the new count; the
        // sockets stay up (they multiplex), only the routes re-resolve.
        route_.clear();
    }
    if (!reply.mapPorts.empty()) {
        if (addrs_.size() != reply.mapPorts.size())
            addrs_.resize(reply.mapPorts.size());
        for (size_t s = 0; s < reply.mapPorts.size(); ++s)
            if (!reply.mapPorts[s].empty())
                addrs_[s] = reply.mapPorts[s];
    }
}

void
KvSessionClient::handleReply(const ConnPtr &conn,
                             const ClientReplyMsg &reply)
{
    // Every request sent on this conn gets exactly one reply — the
    // credit accounting holds even for replies whose op has already
    // expired client-side.
    if (conn->inflight > 0)
        --conn->inflight;
    adoptMap(reply);
    if (reply.credits > 0 && !windowOverridden_)
        conn->window = reply.credits; // the HELLO grant
    pumpSendq(conn);

    auto it = ops_.find(reply.reqId);
    if (it == ops_.end())
        return; // expired or a conn-death completion raced the reply
    PendingOp &op = it->second;
    if (op.internal) {
        ops_.erase(it); // HELLO bookkeeping: no user-visible result
        return;
    }
    if (reply.status == ClientReplyMsg::Status::WrongShard) {
        // The synchronous client's reroute loop, unrolled per op: adopt
        // (done above), re-resolve, re-issue the SAME token toward the
        // owning shard — bounded by the op's attempt budget and, via
        // expireOps, its deadline.
        if (++op.attempts >= kMaxRouteAttempts) {
            complete(reply.reqId,
                     OpResult{ClientReplyMsg::Status::RetriesExhausted,
                              true, false, {}});
            return;
        }
        uint32_t shard =
            shardOfKey(op.key, numShards_ ? numShards_ : 1);
        ConnPtr next = connFor(shard);
        if (!next) {
            complete(reply.reqId,
                     OpResult{ClientReplyMsg::Status::WrongShard, true,
                              false, {}});
            return;
        }
        op.conn = next;
        enqueue(reply.reqId, next);
        return;
    }
    complete(reply.reqId, OpResult{reply.status, true, reply.ok,
                                   reply.value.str()});
}

void
KvSessionClient::markDead(const ConnPtr &conn)
{
    if (!conn->alive)
        return;
    conn->alive = false;
    close(conn->fd);
    conn->fd = -1;
    for (auto it = route_.begin(); it != route_.end();) {
        if (it->second == conn)
            it = route_.erase(it);
        else
            ++it;
    }
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                 conns_.end());
    // Fail everything queued or in flight on it; tokens still redeem.
    std::vector<uint64_t> doomed;
    for (const auto &kv : ops_)
        if (kv.second.conn == conn)
            doomed.push_back(kv.first);
    for (uint64_t token : doomed) {
        if (ops_.at(token).internal) {
            ops_.erase(token);
            continue;
        }
        complete(token, OpResult{ClientReplyMsg::Status::Ok, false,
                                 false, {}});
    }
}

void
KvSessionClient::complete(uint64_t token, OpResult result)
{
    ops_.erase(token);
    results_.emplace(token, std::move(result));
}

void
KvSessionClient::expireOps(TimeNs now)
{
    std::vector<uint64_t> expired;
    for (const auto &kv : ops_)
        if (now >= kv.second.deadline)
            expired.push_back(kv.first);
    for (uint64_t token : expired) {
        // If it was sent, its reply may still arrive — handleReply's
        // unconditional credit decrement keeps the window honest; if it
        // was only queued, pumpSendq skips tokens no longer in ops_.
        if (ops_.at(token).internal)
            ops_.erase(token);
        else
            complete(token, OpResult{ClientReplyMsg::Status::Ok, false,
                                     false, {}});
    }
}

void
KvSessionClient::progress()
{
    // Snapshot: markDead() edits conns_ under our feet.
    std::vector<ConnPtr> live = conns_;
    for (const ConnPtr &conn : live) {
        if (!conn->alive)
            continue;
        flushTx(conn);
        readAndParse(conn);
        if (conn->alive) {
            pumpSendq(conn);
            flushTx(conn);
        }
    }
    expireOps(steadyNowNs());
}

bool
KvSessionClient::done(uint64_t token)
{
    progress();
    return ops_.find(token) == ops_.end();
}

std::optional<KvSessionClient::OpResult>
KvSessionClient::wait(uint64_t token)
{
    while (!done(token))
        block(1);
    return take(token);
}

std::optional<KvSessionClient::OpResult>
KvSessionClient::take(uint64_t token)
{
    auto it = results_.find(token);
    if (it == results_.end())
        return std::nullopt;
    OpResult result = std::move(it->second);
    results_.erase(it);
    return result;
}

size_t
KvSessionClient::waitAll()
{
    while (inflight() > 0) {
        progress();
        if (inflight() > 0)
            block(1);
    }
    size_t ok = 0;
    for (const auto &kv : results_)
        if (kv.second.completed
                && kv.second.status == ClientReplyMsg::Status::Ok)
            ++ok;
    results_.clear();
    return ok;
}

size_t
KvSessionClient::inflight() const
{
    size_t n = 0;
    for (const auto &kv : ops_)
        if (!kv.second.internal)
            ++n;
    return n;
}

uint32_t
KvSessionClient::grantedCredits() const
{
    return seed_ ? seed_->window : requestedCredits_;
}

std::vector<int>
KvSessionClient::fds() const
{
    std::vector<int> out;
    for (const ConnPtr &conn : conns_)
        if (conn->alive)
            out.push_back(conn->fd);
    return out;
}

void
KvSessionClient::overrideWindow(uint32_t w)
{
    windowOverridden_ = true;
    requestedCredits_ = w; // future dials believe it too
    for (const ConnPtr &conn : conns_) {
        conn->window = w;
        pumpSendq(conn);
        flushTx(conn);
    }
}

void
KvSessionClient::block(int timeout_ms)
{
    std::vector<pollfd> pfds;
    for (const ConnPtr &conn : conns_) {
        if (!conn->alive)
            continue;
        short events = POLLIN;
        if (!conn->tx.empty())
            events |= POLLOUT;
        pfds.push_back(pollfd{conn->fd, events, 0});
    }
    if (pfds.empty()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(timeout_ms));
        return;
    }
    poll(pfds.data(), pfds.size(), timeout_ms);
}

} // namespace hermes::app
