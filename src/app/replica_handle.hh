/**
 * @file
 * ReplicaHandle: the uniform client-facing assembly of one replica —
 * protocol engine + local KVS shard + (optionally) the RM agent — behind
 * which the workload driver, the tests and the benches treat all four
 * protocols identically.
 *
 * The handle is also the net::Node the transport delivers to: it routes
 * RM traffic to the RmNode and everything else to the protocol engine,
 * and wires RM m-updates into the protocol's onViewChange.
 */

#ifndef HERMES_APP_REPLICA_HANDLE_HH
#define HERMES_APP_REPLICA_HANDLE_HH

#include <functional>
#include <memory>

#include "app/protocols.hh"
#include "baselines/craq/replica.hh"
#include "baselines/lockstep/replica.hh"
#include "baselines/zab/replica.hh"
#include "hermes/replica.hh"
#include "membership/rm_node.hh"
#include "net/batcher.hh"
#include "net/env.hh"
#include "store/kvs.hh"
#include "store/wal.hh"

namespace hermes::app
{

/** Construction options shared by all protocol handles. */
struct ReplicaOptions
{
    size_t storeCapacity = 1 << 17;
    size_t maxValueSize = 64;
    bool enableRm = false;               ///< run the RM agent (heartbeats)
    membership::RmConfig rmConfig{};
    proto::HermesConfig hermesConfig{};  ///< protocol == Hermes only
    lockstep::LockstepConfig lockstepConfig{}; ///< protocol == Lockstep
    /**
     * Per-peer coalescing of the protocol engine's data-path traffic
     * (INV/ACK/VAL, chain writes, proposes/acks/rounds). RM/membership
     * traffic always bypasses the batcher: failure-detection latency must
     * not ride behind a coalescing window. Disabled (non-positive caps)
     * = the engine sends on the raw transport Env.
     */
    net::BatchPolicy batch{};
    /**
     * Write-ahead log (store/wal.hh). An empty path = no durability (the
     * default, matching the paper's in-memory Hermes). With a path set,
     * the handle opens/recovers the log at construction, replays
     * surviving records into the KVS before the engine serves anything
     * (Hermes: restored Invalid, healed via replay/state transfer), and
     * group-commits at the Env's poll-boundary flush — WAL before
     * batcher, so a record is durable before the ACK/reply staged in the
     * same window leaves the node.
     */
    store::WalConfig wal{};
    /**
     * Elastic-sharding recovery filter: when set, WAL records whose key
     * this predicate rejects are skipped during replayWal(). A replica
     * restarting after a migration cutover holds log records for slots
     * its shard no longer owns; replaying them would resurrect ownership
     * the slot map took away, so the deployment wires this to "is the
     * key's slot still ours under the current map".
     */
    std::function<bool(Key)> walRecoveryOwned;
};

/**
 * One assembled replica. Create via makeReplica(); drive via the client
 * API; deliver transport messages via the net::Node interface.
 */
class ReplicaHandle : public net::Node
{
  public:
    using ReadCallback = std::function<void(const Value &)>;
    using WriteCallback = std::function<void()>;
    using CasCallback = std::function<void(bool, const Value &)>;

    ~ReplicaHandle() override;

    // ---- Client API ----
    virtual void read(Key key, ReadCallback cb) = 0;
    virtual void write(Key key, ValueRef value, WriteCallback cb) = 0;

    /** CAS RMW; only protocols with traits().supportsRmw implement it. */
    virtual void
    cas(Key, ValueRef, ValueRef, CasCallback)
    {
        panic("%s does not support RMWs", traits().name);
    }

    // ---- Introspection ----
    virtual const ProtocolTraits &traits() const = 0;
    store::KvStore &kvStore() { return store_; }
    membership::RmNode *rm() { return rm_.get(); }

    /** Push an m-update directly (tests without a live RM agent). */
    virtual void injectView(const membership::MembershipView &view) = 0;

    /** The protocol engines, for protocol-specific test introspection. */
    virtual proto::HermesReplica *hermes() { return nullptr; }
    virtual craq::CraqReplica *craq() { return nullptr; }
    virtual zab::ZabReplica *zab() { return nullptr; }
    virtual lockstep::LockstepReplica *lockstep() { return nullptr; }

    /** The engine's coalescing layer; nullptr when batching is off. */
    net::Batcher *batcher() { return batcher_.get(); }

    /** The write-ahead log; nullptr when durability is off. */
    store::Wal *wal() { return wal_.get(); }

    /**
     * Install one slot-migration entry directly into the local KVS (and
     * WAL, when durable): the destination-side apply of the snapshot /
     * catch-up-delta transfer. Same discipline as a shadow-sync state
     * chunk — newest timestamp wins, and the entry lands Valid because
     * the source observed exactly this version committed. Idempotent
     * (re-sending a delta is a no-op), and safe against writes racing
     * the transfer on the destination: a newer local version is never
     * regressed. Must run in the replica's loop/job context, like every
     * other store mutation. @return whether the entry was adopted.
     */
    bool applyMigratedEntry(Key key, const ValueRef &value, Timestamp ts,
                            uint8_t flags);

  protected:
    ReplicaHandle(net::Env &env, const ReplicaOptions &options,
                  membership::MembershipView initial);

    /** Route one message to RM or the protocol engine. */
    bool routeRm(const net::MessagePtr &msg);

    /** The Env the protocol engine sends on (batched when configured). */
    net::Env &protoEnv() { return batcher_ ? *batcher_ : env_; }

    /**
     * Replay the WAL's recovered records into the KVS (no-op without a
     * WAL), restoring each surviving key's value/timestamp with protocol
     * state byte @p restore_state, newest timestamp wins. Runs with the
     * per-key recovery lock table armed, so a concurrently delivered
     * INV/write for the same key serializes against the replay instead
     * of interleaving with it. Called from the concrete handle's ctor.
     */
    void replayWal(uint8_t restore_state);

    net::Env &env_;
    store::KvStore store_;
    std::unique_ptr<store::Wal> wal_;       ///< outlives batcher_'s dtor
    std::unique_ptr<net::Batcher> batcher_; ///< before rm_: RM stays raw
    std::unique_ptr<membership::RmNode> rm_;
    store::KeyLockTable recoveryLocks_;
    std::function<bool(Key)> walOwnedFilter_;
};

/** Build the replica assembly for @p protocol on @p env. */
std::unique_ptr<ReplicaHandle>
makeReplica(Protocol protocol, net::Env &env,
            membership::MembershipView initial,
            const ReplicaOptions &options);

} // namespace hermes::app

#endif // HERMES_APP_REPLICA_HANDLE_HH
