/**
 * @file
 * Linearizability checkers for single-key registers with reads, writes
 * and CAS — the executable counterpart of the paper's TLA+ model
 * checking, run by the property-based protocol tests against histories
 * recorded under fault injection.
 *
 * Linearizability is compositional, so both checkers validate each key's
 * sub-history independently (which also keeps the search tractable).
 * Two engines share the LinResult API:
 *
 *  - DFS (Wing & Gong): linearizes one "minimal" pending operation at a
 *    time — an op no other unlinearized op precedes in real time —
 *    backtracking on result mismatches, with memoization on
 *    (linearized-set, register value). Exponential on heavily
 *    concurrent keys; the cross-check oracle for small histories.
 *
 *  - JIT (Lowe-style just-in-time linearization): sweeps the history
 *    once in event order, carrying the *set* of reachable abstract
 *    states (which concurrent ops have linearized × register value).
 *    Operations linearize as late as possible — only when an op's
 *    response event forces it — so the frontier stays proportional to
 *    the instantaneous per-key concurrency instead of the history
 *    length. Million-op adversarial histories check in seconds; the
 *    fault-schedule explorer depends on it.
 */

#ifndef HERMES_APP_LIN_CHECKER_HH
#define HERMES_APP_LIN_CHECKER_HH

#include <string>

#include "app/history.hh"

namespace hermes::app
{

/** Checker outcome. */
enum class LinResult
{
    Ok,           ///< a valid linearization exists
    Violation,    ///< no linearization exists: the protocol is broken
    Inconclusive, ///< state-budget exhausted (pathological concurrency)
};

/** Per-run verdict with diagnostics for test failure messages. */
struct LinReport
{
    LinResult result = LinResult::Ok;
    Key offendingKey = 0;
    std::string detail;

    bool ok() const { return result == LinResult::Ok; }
};

/** Which search engine checks each per-key sub-history. */
enum class LinMode
{
    Dfs, ///< Wing & Gong backtracking search (oracle; small histories)
    Jit, ///< just-in-time frontier sweep (long adversarial histories)
};

/**
 * Check one key's sub-history against an initial register value with
 * the DFS engine.
 *
 * @param ops           completed operations on one key
 * @param initial       register value before the history (usually "")
 * @param state_budget  max distinct search states before Inconclusive
 */
LinResult checkKeyHistory(const std::vector<HistOp> &ops,
                          const Value &initial = {},
                          size_t state_budget = 1u << 22);

/**
 * Check one key's sub-history with the just-in-time engine. Verdicts
 * agree with checkKeyHistory on every history (the differential suite
 * enforces it); only the cost differs — the JIT sweep is near-linear
 * when per-key concurrency is bounded, where the DFS is exponential.
 */
LinResult checkKeyHistoryJit(const std::vector<HistOp> &ops,
                             const Value &initial = {},
                             size_t state_budget = 1u << 22);

/** Check a full multi-key history (compositionally, key by key). */
LinReport checkHistory(const History &history,
                       size_t state_budget = 1u << 22,
                       LinMode mode = LinMode::Dfs);

/**
 * Check a sharded history shard-by-shard (P-compositionality): shards
 * own disjoint key sets, so the composed history is linearizable iff
 * every shard's sub-history (selected by HistOp::shard) is. Reports the
 * first violating shard, else the last inconclusive one.
 */
LinReport checkShardedHistory(const History &history,
                              size_t state_budget = 1u << 22,
                              LinMode mode = LinMode::Dfs);

} // namespace hermes::app

#endif // HERMES_APP_LIN_CHECKER_HH
