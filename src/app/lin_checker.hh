/**
 * @file
 * A Wing & Gong linearizability checker for single-key registers with
 * reads, writes and CAS — the executable counterpart of the paper's TLA+
 * model checking, run by the property-based protocol tests against
 * histories recorded under fault injection.
 *
 * Linearizability is compositional, so the checker validates each key's
 * sub-history independently (which also keeps the search tractable). The
 * search linearizes one "minimal" pending operation at a time — an op no
 * other unlinearized op precedes in real time — backtracking on result
 * mismatches, with memoization on (linearized-set, register value).
 */

#ifndef HERMES_APP_LIN_CHECKER_HH
#define HERMES_APP_LIN_CHECKER_HH

#include <string>

#include "app/history.hh"

namespace hermes::app
{

/** Checker outcome. */
enum class LinResult
{
    Ok,           ///< a valid linearization exists
    Violation,    ///< no linearization exists: the protocol is broken
    Inconclusive, ///< state-budget exhausted (pathological concurrency)
};

/** Per-run verdict with diagnostics for test failure messages. */
struct LinReport
{
    LinResult result = LinResult::Ok;
    Key offendingKey = 0;
    std::string detail;

    bool ok() const { return result == LinResult::Ok; }
};

/**
 * Check one key's sub-history against an initial register value.
 *
 * @param ops           completed operations on one key
 * @param initial       register value before the history (usually "")
 * @param state_budget  max distinct search states before Inconclusive
 */
LinResult checkKeyHistory(const std::vector<HistOp> &ops,
                          const Value &initial = {},
                          size_t state_budget = 1u << 22);

/** Check a full multi-key history (compositionally, key by key). */
LinReport checkHistory(const History &history,
                       size_t state_budget = 1u << 22);

/**
 * Check a sharded history shard-by-shard (P-compositionality): shards
 * own disjoint key sets, so the composed history is linearizable iff
 * every shard's sub-history (selected by HistOp::shard) is. Reports the
 * first violating shard, else the last inconclusive one.
 */
LinReport checkShardedHistory(const History &history,
                              size_t state_budget = 1u << 22);

} // namespace hermes::app

#endif // HERMES_APP_LIN_CHECKER_HH
