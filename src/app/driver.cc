#include "app/driver.hh"

#include "common/logging.hh"

namespace hermes::app
{

struct LoadDriver::Session
{
    /**
     * The replica slot this session prefers within every shard group:
     * each op is routed to the op's shard, replica `replicaIndex`. In an
     * unsharded cluster this is simply the session's home node.
     */
    size_t replicaIndex = 0;
    /** The home shard (partitionSessionsByShard only). */
    uint32_t homeShard = 0;
    uint64_t id = 0;
    Rng rng{0};
    uint64_t nextTag = 0;
    /** The op currently in flight (for history + pending-op flushing). */
    HistOp current;
    bool inFlight = false;
};

LoadDriver::LoadDriver(SimCluster &cluster, DriverConfig config)
    : cluster_(cluster), config_(std::move(config)),
      workload_(config_.workload)
{
}

LoadDriver::~LoadDriver() = default;

DriverResult
LoadDriver::run()
{
    measureStart_ = cluster_.now() + config_.warmup;
    measureEnd_ = measureStart_ + config_.measure;
    if (config_.timelineBucket > 0) {
        timeline_.assign((config_.warmup + config_.measure
                          + config_.quiesceAfter)
                                 / config_.timelineBucket
                             + 2,
                         0);
    }

    uint64_t seed_state = config_.seed;
    size_t nodes = cluster_.numNodes();
    for (size_t n = 0; n < nodes; ++n) {
        for (size_t s = 0; s < config_.sessionsPerNode; ++s) {
            auto session = std::make_unique<Session>();
            // One batch of sessions per sim node; each batch prefers its
            // node's replica slot, so load spreads evenly over every
            // group's replicas (and total load scales with shard count).
            session->replicaIndex = n % cluster_.replicasPerShard();
            session->homeShard =
                static_cast<uint32_t>(n / cluster_.replicasPerShard());
            session->id = n * config_.sessionsPerNode + s;
            session->rng.reseed(splitmix64(seed_state));
            sessions_.push_back(std::move(session));
        }
    }
    // Stagger session starts so the first RTT is not one synchronized
    // burst (the paper's clients are likewise uncoordinated).
    Rng stagger(config_.seed ^ 0x57A66E5ull);
    for (auto &session : sessions_) {
        cluster_.runtime().events().scheduleAfter(
            stagger.nextBounded(20'000),
            [this, s = session.get()] { issueNext(*s); });
    }

    cluster_.runtime().runUntil(measureEnd_);
    if (config_.quiesceAfter > 0) {
        stopped_ = true;
        cluster_.runtime().runUntil(measureEnd_ + config_.quiesceAfter);
    }

    // Flush in-flight updates as pending history entries: the checker may
    // linearize them anywhere after their invocation or drop them
    // (pending reads have no effect and are simply omitted).
    if (config_.recordHistory) {
        for (auto &session : sessions_) {
            if (session->inFlight
                    && session->current.kind != HistOp::Kind::Read) {
                HistOp op = session->current;
                op.response = kPendingResponse;
                history_.add(std::move(op));
            }
        }
    }

    DriverResult result;
    result.opsInWindow = opsInWindow_;
    result.opsTotal = opsTotal_;
    result.outstandingAtEnd = issued_ - opsTotal_;
    result.throughputMops =
        config_.measure > 0
            ? static_cast<double>(opsInWindow_)
                  / (static_cast<double>(config_.measure) / 1e9) / 1e6
            : 0.0;
    result.readLatencyNs = readLatency_;
    result.writeLatencyNs = writeLatency_;
    for (uint64_t count : timeline_) {
        result.timelineMops.push_back(
            static_cast<double>(count)
            / (static_cast<double>(config_.timelineBucket) / 1e9) / 1e6);
    }
    result.history = std::move(history_);
    return result;
}

void
LoadDriver::issueNext(Session &session)
{
    if (stopped_)
        return; // quiescing: in-flight ops finish, no new ones start
    WorkloadOp op = workload_.next(session.rng);
    if (config_.partitionSessionsByShard && cluster_.numShards() > 1) {
        op.key = workload_.nextKeyInShard(session.rng, session.homeShard,
                                          cluster_.numShards());
    }

    // Shard routing with deterministic client failover: the op goes to
    // the preferred replica slot of the key's group, or to the lowest-id
    // live replica there when that slot has crashed. Only when the whole
    // group is down does the session die — so one shard's failure never
    // starves the others of offered load.
    uint32_t shard = cluster_.shardOf(op.key);
    NodeId target = cluster_.liveNodeOfShard(shard, session.replicaIndex);
    if (target == kInvalidNode)
        return; // the key's whole shard group crashed; the session dies

    session.current = HistOp{};
    session.current.key = op.key;
    session.current.shard = shard;
    session.current.invoke = cluster_.now();
    session.inFlight = true;
    ++issued_;

    switch (op.kind) {
      case WorkloadOp::Kind::Read:
        session.current.kind = HistOp::Kind::Read;
        cluster_.read(target, op.key,
                      [this, &session](const Value &v) {
                          session.current.result = v;
                          complete(session);
                      });
        break;
      case WorkloadOp::Kind::Write: {
        session.current.kind = HistOp::Kind::Write;
        uint64_t tag = (session.id << 32) | ++session.nextTag;
        session.current.arg = workload_.makeValue(tag);
        cluster_.write(target, op.key, session.current.arg,
                       [this, &session] { complete(session); });
        break;
      }
      case WorkloadOp::Kind::Cas: {
        session.current.kind = HistOp::Kind::Cas;
        uint64_t tag = (session.id << 32) | ++session.nextTag;
        session.current.arg = workload_.makeValue(tag);
        // Half the CASes expect the genesis value (they may win on fresh
        // keys); the rest expect a random foreign value (they exercise
        // the failure path). Both outcomes feed the checker.
        if (session.rng.nextBool(0.5)) {
            session.current.expected = Value{};
        } else {
            session.current.expected =
                workload_.makeValue(session.rng.next());
        }
        cluster_.cas(target, op.key, session.current.expected,
                     session.current.arg,
                     [this, &session](bool applied, const Value &seen) {
                         session.current.casApplied = applied;
                         session.current.result = seen;
                         complete(session);
                     });
        break;
      }
    }
}

void
LoadDriver::complete(Session &session)
{
    HistOp op = std::move(session.current);
    session.inFlight = false;
    op.response = cluster_.now();
    ++opsTotal_;

    if (op.response >= measureStart_ && op.response < measureEnd_) {
        ++opsInWindow_;
        DurationNs latency = op.response - op.invoke;
        if (op.kind == HistOp::Kind::Read)
            readLatency_.record(latency);
        else
            writeLatency_.record(latency);
    }
    if (!timeline_.empty()) {
        size_t bucket = op.response / config_.timelineBucket;
        if (bucket < timeline_.size())
            ++timeline_[bucket];
    }
    if (config_.recordHistory)
        history_.add(std::move(op));

    issueNext(session);
}

} // namespace hermes::app
