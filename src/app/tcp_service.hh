/**
 * @file
 * TcpKvService: a complete replicated KV service over real TCP — the
 * protocol engines from the simulator, unchanged, behind network sockets
 * with Wings-style batching, serving external clients on every replica's
 * port. This is the "HermesKV as a deployable system" face of the
 * library (the paper's §4 system, with TCP standing in for RDMA).
 *
 * ShardedTcpDeployment stacks S of these services — one per shard of the
 * key space, each its own replica group on distinct ports, all in one
 * process with one event-loop thread per replica — behind an explicit
 * shard → address map. The map is exchanged with clients at HELLO and
 * refreshed on every WrongShard rejection, which is what turns the
 * redirect status from a dead end into a working re-route: the seqlock
 * KVS and the per-shard groups share nothing, so aggregate throughput
 * scales with cores.
 */

#ifndef HERMES_APP_TCP_SERVICE_HH
#define HERMES_APP_TCP_SERVICE_HH

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "app/replica_handle.hh"
#include "app/slot_map.hh"
#include "net/client_msgs.hh"
#include "net/tcp_cluster.hh"

namespace hermes::app
{

/** Shard → replica-port map of a TCP deployment (net wire aliases). */
using net::ShardAddressMap;
using net::ShardPorts;

/** A running replicated KV service on localhost TCP. */
class TcpKvService
{
  public:
    /**
     * @param protocol   replication protocol to deploy
     * @param nodes      replica count
     * @param options    store/RM/protocol options
     * @param config     TCP transport knobs (base port!)
     * @param num_shards shard count of the deployment's map (the service
     *                   runs ONE replica group, serving shard @p shard_id
     *                   of that map; 1/0 = the unsharded deployment)
     * @param shard_id   which shard this group serves
     *
     * Requests whose shard stamp disagrees with (num_shards, shard_id) —
     * a client routing with a stale map — are rejected with an explicit
     * ClientReplyMsg::Status::WrongShard instead of silently served from
     * the wrong group. The client's stamped shard *count* is checked
     * against num_shards before anything hashes or indexes, so a garbage
     * stamp can never address the map.
     *
     * Durability: when options.wal.path is non-empty it names a
     * DIRECTORY (created on demand) — replica i logs to
     * `<dir>/replica<i>.wal`, each replica its own file, so a
     * crash-restarted replica replays exactly its own records.
     */
    TcpKvService(Protocol protocol, size_t nodes, ReplicaOptions options,
                 net::TcpConfig config = {}, size_t num_shards = 1,
                 uint32_t shard_id = 0);
    ~TcpKvService();

    /** Bind, mesh-connect, start protocol engines and client handlers. */
    void start();

    /** Stop all node loops. */
    void stop();

    /**
     * Register the full deployment's shard → address map (call before
     * start()). HELLO replies and WrongShard rejections then advertise
     * every shard's replica ports, letting clients reconnect to the
     * owning group. Without it the service advertises only its own
     * entry — all a standalone group can know.
     */
    void setDeploymentMap(ShardAddressMap map);

    /** Snapshot of the live versioned slot → shard ownership map. */
    std::shared_ptr<const SlotMap> slotMap() const;

    /**
     * Install a successor slot map (strictly newer epoch) together with
     * the deployment's address map of the same generation, and stamp
     * every replica's WAL with the new epoch so records appended from
     * here on carry the ownership generation they were written under.
     * Called by the deployment coordinator at migration cutover and on
     * addShard/removeShard; replies stamped after this advertise the
     * new epoch, which is what clients adopt strictly by version.
     */
    void installMap(const SlotMap &map, ShardAddressMap ports);

    // ---- Live-migration hooks (source-group side) ----------------------
    // Driven by ShardedTcpDeployment::migrateSlots; the service's part is
    // the request-path interception: while a migration is active, writes
    // and CAS ops landing on a moving slot are tracked (dirtied for the
    // catch-up rounds, counted while their protocol commit is in flight),
    // and once the migration locks, EVERY op on a moving slot parks —
    // answered only at cutover, with WrongShard + the successor map, so
    // the client's reroute loop re-issues it at the destination.

    /** Arm interception for @p slots (one migration at a time). */
    void beginMigration(const std::vector<uint32_t> &slots);

    /** Drain the set of keys re-dirtied by writes racing the transfer. */
    std::set<Key> takeMigrationDirty();

    /** Tracked write/CAS ops whose protocol commit is still in flight. */
    size_t migrationInflight() const;

    /** Enter the locked phase: ops on moving slots park from here on. */
    void lockMigration();

    /**
     * Cutover: install the successor map and answer every parked op
     * with WrongShard + that map. Ends the migration.
     */
    void finishMigration(const SlotMap &map, ShardAddressMap ports);

    /**
     * Abandon the migration WITHOUT moving ownership: drop the
     * interception state (map and epoch untouched) and run every parked
     * op through the normal request path — this group still owns the
     * slots, so they serve here as if the migration never started. The
     * coordinator calls this when the cutover verification cannot prove
     * the destination holds every acknowledged write; keeping the old
     * map is the safe degraded outcome.
     */
    void abortMigration();

    /**
     * Serializes admin choreography against each other: restartReplica
     * and the deployment's migration coordinator both hold this while
     * touching replica handles from outside their loops, so a crash-
     * restart cannot destroy a handle mid-snapshot-read.
     */
    std::mutex &adminLock() { return adminMutex_; }

    /** True while replica @p id 's loop thread is running. */
    bool replicaRunning(NodeId id) const { return cluster_.running(id); }

    /** Is replica @p id a §3.4 shadow (mid state-transfer)? Queries on
     *  the replica's loop; a crashed replica counts as shadow (it is
     *  unusable as a transfer source either way). */
    bool replicaIsShadow(NodeId id);

    /** Port clients should dial for replica @p id. */
    uint16_t portOf(NodeId id) const { return cluster_.portOf(id); }

    net::TcpCluster &cluster() { return cluster_; }
    ReplicaHandle &replica(NodeId id) { return *replicas_.at(id); }
    size_t numNodes() const { return replicas_.size(); }
    uint32_t shardId() const { return shardId_; }

    /** Kill one replica (closes its sockets, halts its loop). */
    void crash(NodeId id) { cluster_.crash(id); }

    /**
     * Crash-restart recovery over real sockets (Hermes + WAL only): if
     * replica @p id is still running, kill its loop first; then shrink
     * the survivors' view (epoch+1) so writes commit without it,
     * rebuild the replica from its own WAL file (records restore as
     * Invalid at their logged timestamps), restart the loop — which
     * re-dials the full mesh itself — extend the view (epoch+2), and
     * stream the §3.4 shadow state transfer from the lowest-id live
     * survivor. Returns once the sync has been started; the caller
     * polls isShadow() for completion. Whole-group outages have no
     * survivor and are out of scope (cold restart = new service over
     * the same WAL directory).
     */
    void restartReplica(NodeId id);

    /**
     * Graceful shutdown: stop accepting new sessions on every replica,
     * run one final flush (WAL group-commit buffers included), then
     * stop and join the loop threads. Terminal — use instead of stop().
     */
    void drain();

  private:
    struct MigrationState;

    void handleClientFrame(NodeId node, net::ClientConnId conn,
                           const std::shared_ptr<net::Message> &msg);

    /** The map to advertise: the deployment's, or just our own entry. */
    ShardAddressMap advertisedMap() const;

    /** Per-replica options: the WAL directory resolved to this
     *  replica's own log file, the recovery filter to the live map. */
    ReplicaOptions optionsFor(NodeId id) const;

    /** Stamp every replica's WAL with @p epoch (loop-safe). */
    void stampWalEpochs(uint32_t epoch);

    net::TcpCluster cluster_;
    Protocol protocol_;
    ReplicaOptions baseOptions_;
    std::vector<std::unique_ptr<ReplicaHandle>> replicas_;
    size_t numShards_;
    uint32_t shardId_;
    /** Guards slotMap_/deploymentMap_/migration_: read on every replica
     *  loop's request path, swapped by the coordinator thread. */
    mutable std::mutex mapMutex_;
    std::shared_ptr<const SlotMap> slotMap_;
    ShardAddressMap deploymentMap_;
    std::unique_ptr<MigrationState> migration_;
    uint64_t migrationGen_ = 0;
    std::mutex adminMutex_;
};

/**
 * S per-shard replica groups served from one process: group s runs the
 * keys with shardOfKey(key, S) == s on its own ports
 * (basePort + s*replicas … ), with one event-loop thread per replica —
 * thread-per-shard parallelism on a real network. Every group knows the
 * whole deployment's address map and advertises it at HELLO and on
 * WrongShard, so any replica of any shard can bootstrap or correct a
 * client's routing.
 */
class ShardedTcpDeployment
{
  public:
    ShardedTcpDeployment(Protocol protocol, size_t shards,
                         size_t replicas_per_shard, ReplicaOptions options,
                         net::TcpConfig config = {});

    /** Start every shard group (all listeners bind before any start). */
    void start();

    /** Stop all groups (idempotent). */
    void stop();

    size_t numShards() const { return groups_.size(); }
    size_t replicasPerShard() const { return replicasPerShard_; }

    TcpKvService &shard(uint32_t s) { return *groups_.at(s); }

    /** The deployment's live slot → shard ownership map. */
    const SlotMap &slotMap() const { return slotMap_; }

    /**
     * Live slot migration over real sockets: move @p slots from shard
     * @p from to shard @p to while concurrent clients keep operating.
     * Blocks the calling thread through the whole move — snapshot copy
     * from a live source replica's seqlocked store onto every live
     * destination replica, catch-up rounds draining keys re-dirtied by
     * racing writes, then the locked phase: new ops on moving slots
     * park, in-flight commits drain, and a verification scan proves
     * every moving key Valid on all live operational source replicas at
     * exactly the last-copied timestamp (re-copying stragglers until it
     * holds). Cutover installs the epoch+1 map destination-first and
     * answers parked ops with WrongShard + that map, which the client
     * reroute loop turns into a retry at the new owner. If verification
     * cannot prove the transfer complete within its deadline (a fault
     * schedule keeping keys dirty or non-Valid), the migration ABORTS:
     * ownership never moves, parked ops are served at the source, and 0
     * is returned — never a cutover with unverified keys. Safe to run
     * against concurrent restartReplica on either group. Slots not
     * owned by @p from are ignored. @return slots actually moved.
     */
    size_t migrateSlots(std::vector<uint32_t> slots, uint32_t from,
                        uint32_t to);

    /**
     * Grow the deployment: start a new replica group serving a brand-new
     * shard id that owns ZERO slots (epoch+1 map installed everywhere).
     * Ports continue the deployment's contiguous lanes. Data moves only
     * when a subsequent migrateSlots hands it slots. @return the id.
     */
    uint32_t addShard();

    /**
     * Shrink: stop and remove the highest-id group, which must own no
     * slots (migrate them away first); installs the epoch+1 map.
     */
    void removeShard();

    /** Port of @p shard 's @p replica -th node. */
    uint16_t
    portOf(uint32_t shard, NodeId replica = 0) const
    {
        return groups_.at(shard)->portOf(replica);
    }

    const ShardAddressMap &addressMap() const { return map_; }

    /**
     * Kill one whole shard group (every replica's loop). The other
     * shards keep serving — the fault-isolation property the per-shard
     * tests assert.
     */
    void crashShard(uint32_t s) { groups_.at(s)->stop(); }

    /** Crash-restart one replica of one shard from its WAL (see
     *  TcpKvService::restartReplica). The deployment's WAL layout is
     *  per-replica: shard s, replica r logs to
     *  `<walDir>/shard<s>/replica<r>.wal`. */
    void
    restartReplica(uint32_t shard, NodeId replica)
    {
        groups_.at(shard)->restartReplica(replica);
    }

    /** Gracefully drain every shard group (see TcpKvService::drain). */
    void
    drain()
    {
        for (auto &group : groups_)
            group->drain();
    }

  private:
    /**
     * Copy every key of @p keys from a live non-shadow replica of
     * @p from onto every live replica of @p to, recording the copied
     * timestamp per key in @p copied (the cutover verification bar).
     */
    void copyKeys(const std::set<Key> &keys, uint32_t from, uint32_t to,
                  std::map<Key, Timestamp> &copied);

    /**
     * Verification scan: keys in @p moving slots that are non-Valid on
     * some live operational source replica, or whose store timestamp
     * disagrees with the last copy — i.e. committed writes the transfer
     * has not carried over yet. Empty = safe to cut over.
     */
    std::set<Key> verifyMoving(uint32_t from,
                               const std::vector<bool> &moving,
                               const std::map<Key, Timestamp> &copied);

    Protocol protocol_;
    ReplicaOptions baseOptions_;
    net::TcpConfig baseConfig_;
    size_t replicasPerShard_;
    std::vector<std::unique_ptr<TcpKvService>> groups_;
    ShardAddressMap map_;
    SlotMap slotMap_;
};

/**
 * Synchronous multi-shard KV client for a TCP deployment: read/write/cas
 * with blocking calls, as an application would use the service.
 *
 * Routing: the client keeps one connection per shard and routes each op
 * by the stable shardOfKey hash over its current shard map. The map is
 * negotiated at HELLO (connect time) and *re-resolved from any WrongShard
 * rejection*, whose reply carries the authoritative count and address
 * map: the client adopts the map, reconnects to the shard that actually
 * owns the key, and retries — a bounded loop, so a client constructed
 * with an arbitrarily stale map converges onto the live deployment
 * instead of dead-ending on one socket.
 */
class KvClient
{
  public:
    /** Reroute attempts per op before surfacing RetriesExhausted. */
    static constexpr int kMaxRouteAttempts = 4;

    /**
     * Connect to the deployment via the replica on @p seed_port.
     *
     * @param num_shards 0 (default) = negotiate the shard map at HELLO;
     *        a positive count skips HELLO and trusts the caller's map —
     *        deliberately stale clients in tests use this.
     */
    explicit KvClient(uint16_t seed_port, size_t num_shards = 0);

    bool connected() const;

    /** @return the value, or nullopt on timeout/disconnect. */
    std::optional<Value> read(Key key, DurationNs timeout = 5_s);

    /** @return true when the write committed. */
    bool write(Key key, Value value, DurationNs timeout = 5_s);

    /** @return whether the CAS applied, or nullopt on timeout. */
    std::optional<bool> cas(Key key, Value expected, Value desired,
                            DurationNs timeout = 5_s);

    /**
     * CAS also returning the observed register value — what the lin-check
     * harnesses record (a failed CAS's history entry must carry the value
     * it observed).
     */
    std::optional<std::pair<bool, Value>>
    casObserve(Key key, Value expected, Value desired,
               DurationNs timeout = 5_s);

    /**
     * Status of the last completed call: Ok, WrongShard when no route to
     * the key's owner is known (the advertised map has no address for
     * it), or RetriesExhausted when kMaxRouteAttempts re-resolve-and-
     * reroute rounds never converged.
     */
    net::ClientReplyMsg::Status lastStatus() const { return lastStatus_; }

    /** The client's current notion of the deployment's shard count. */
    size_t numShards() const { return numShards_; }

    /** The client's current shard → address map (HELLO/WrongShard fed). */
    const ShardAddressMap &addressMap() const { return addrs_; }

    /** Epoch of the slot map the client has adopted (0 = none yet). */
    uint32_t mapEpoch() const { return mapEpoch_; }

    /** The shard this client would route @p key to right now. */
    uint32_t routedShard(Key key) const { return routeShard(key); }

    /**
     * Test hook: feed an advertised map exactly as a reply would.
     * @return whether anything was adopted — false for a reply whose
     * epoch is OLDER than the client's (the strict-adoption rule: a
     * delayed advertisement must never roll routing back).
     */
    bool
    adoptAdvertisedMap(const net::ClientReplyMsg &reply)
    {
        return adoptMap(reply, /*via_seed=*/false);
    }

  private:
    /** Stamp + send with bounded re-resolve-and-reroute on WrongShard. */
    std::shared_ptr<net::Message>
    callRerouting(net::ClientRequestMsg &request, DurationNs timeout);

    /** HELLO: ask the seed for the deployment map and adopt it. */
    void resolveMapFromSeed();

    /** Adopt count/addresses a reply advertises. @return anything new? */
    bool adoptMap(const net::ClientReplyMsg &reply, bool via_seed);

    /**
     * Connection serving @p shard: cached, dialed, or seed fallback.
     * Dialing is bounded by @p deadline — each failed dial attempt costs
     * real wall time (20 ms retry sleeps), so a nearly-expired op skips
     * further replicas rather than blowing through its budget.
     */
    net::TcpClient *connectionFor(uint32_t shard, TimeNs deadline);

    /** One request/reply on @p conn with reqId matching. */
    std::shared_ptr<net::Message> callOn(net::TcpClient &conn,
                                         net::ClientRequestMsg &request,
                                         DurationNs timeout);

    /** Route @p key: by adopted slot-owner table when one is held (it
     *  reflects migrations), else by the uniform shardOfKey hash. */
    uint32_t routeShard(Key key) const;

    uint16_t seedPort_;
    std::unique_ptr<net::TcpClient> seed_;
    bool seedShardKnown_ = false;
    uint32_t seedShard_ = 0;
    std::map<uint32_t, std::unique_ptr<net::TcpClient>> conns_;
    ShardAddressMap addrs_;
    size_t numShards_ = 1;
    uint32_t mapEpoch_ = 0;           ///< adopted map version (0 = none)
    std::vector<uint16_t> slotOwners_; ///< adopted slot → shard table
    uint64_t nextReqId_ = 1;
    net::ClientReplyMsg::Status lastStatus_ =
        net::ClientReplyMsg::Status::Ok;
};

/**
 * Pipelined multi-shard session client: the massive-client face of the
 * deployment. Where KvClient blocks on one request at a time,
 * KvSessionClient keeps many requests in flight per connection —
 * requests carry per-session sequence numbers (reqIds), replies
 * complete out of the reply stream by reqId, and the client caps its
 * in-flight ops at the credit window the server granted at HELLO (the
 * server enforces the cap by ceasing to read an over-limit session, so
 * a cooperative client never hits raw TCP backpressure).
 *
 * Everything is single-threaded and non-blocking: progress() pumps all
 * sockets without blocking, wait()/waitAll() poll until completion, and
 * an external event loop (the 10-10k session bench) can multiplex
 * thousands of these clients off fds(). The synchronous client's
 * reroute-on-WrongShard logic is preserved *per in-flight op*: a
 * rejected op adopts the advertised map and re-issues itself toward the
 * owning shard — concurrently with every other op, within its own
 * deadline and attempt budget.
 */
class KvSessionClient
{
  public:
    /** Reroute attempts per op before surfacing RetriesExhausted. */
    static constexpr int kMaxRouteAttempts = 4;

    /** Completion of one async op. */
    struct OpResult
    {
        /** Service-level status (Ok / WrongShard / RetriesExhausted). */
        net::ClientReplyMsg::Status status =
            net::ClientReplyMsg::Status::Ok;
        /** False: timed out / disconnected / unroutable. */
        bool completed = false;
        bool casApplied = false; ///< CAS: whether it applied
        Value value;             ///< read result / CAS observed value
    };

    /**
     * Connect to the deployment via the replica on @p seed_port.
     *
     * @param credits    credit window to request at HELLO (0 = accept
     *                   the server default). The grant comes back in
     *                   the HELLO reply and caps this session's
     *                   pipeline depth.
     * @param num_shards 0 = negotiate the shard map at HELLO; positive
     *                   = trust the caller's (possibly stale) count,
     *                   as the deliberately-stale test clients do.
     */
    explicit KvSessionClient(uint16_t seed_port, uint32_t credits = 0,
                             size_t num_shards = 0);
    ~KvSessionClient();

    KvSessionClient(const KvSessionClient &) = delete;
    KvSessionClient &operator=(const KvSessionClient &) = delete;

    bool connected() const;

    /** Issue ops without blocking; the token redeems the result. */
    uint64_t readAsync(Key key, DurationNs timeout = 5_s);
    uint64_t writeAsync(Key key, Value value, DurationNs timeout = 5_s);
    uint64_t casAsync(Key key, Value expected, Value desired,
                      DurationNs timeout = 5_s);

    /** Pump every socket once; never blocks. */
    void progress();

    /** progress() and report whether @p token has completed. */
    bool done(uint64_t token);

    /** Block (polling) until @p token completes, up to its deadline.
     *  Consumes the result; unknown/already-taken tokens → nullopt. */
    std::optional<OpResult> wait(uint64_t token);

    /** Result of a completed op (consumed). nullopt: not done yet. */
    std::optional<OpResult> take(uint64_t token);

    /** Drain every in-flight op. @return ops that completed Ok. */
    size_t waitAll();

    /** Ops in flight or queued (internal hellos excluded). */
    size_t inflight() const;

    /** The window granted at HELLO (requested value until it answers). */
    uint32_t grantedCredits() const;

    size_t numShards() const { return numShards_; }
    const ShardAddressMap &addressMap() const { return addrs_; }

    /** Epoch of the slot map the session has adopted (0 = none yet). */
    uint32_t mapEpoch() const { return mapEpoch_; }

    /** Test hook: feed an advertised map exactly as a reply would (the
     *  strict-adoption rule discards epochs older than adopted). */
    void adoptAdvertisedMap(const net::ClientReplyMsg &reply)
    {
        adoptMap(reply);
    }

    /** Every live socket fd — for an external epoll/poll loop driving
     *  many sessions (call progress() on readiness). */
    std::vector<int> fds() const;

    /**
     * Test/bench hook: believe a window of @p w regardless of what the
     * server granted — how the credit-exhaustion suites over-drive a
     * session to prove the *server* enforces its limit.
     */
    void overrideWindow(uint32_t w);

  private:
    struct SessionConn
    {
        int fd = -1;
        uint16_t port = 0;
        bool alive = false;
        std::vector<uint8_t> tx;
        std::vector<uint8_t> rx;
        uint32_t window = 0;   ///< believed credit window
        uint32_t inflight = 0; ///< sent, not yet completed/expired
        std::deque<uint64_t> sendq; ///< tokens awaiting window room
    };
    using ConnPtr = std::shared_ptr<SessionConn>;

    struct PendingOp
    {
        net::ClientRequestMsg::Op op = net::ClientRequestMsg::Op::Read;
        Key key = 0;
        Value value;
        Value expected;
        int attempts = 0;
        TimeNs deadline = 0;
        bool internal = false; ///< bookkeeping op (HELLO), not user-visible
        ConnPtr conn;          ///< where sent/queued (null = unroutable)
    };

    ConnPtr dial(uint16_t port, int connect_attempts);
    ConnPtr connFor(uint32_t shard);
    void sendHello(const ConnPtr &conn);
    uint64_t issue(PendingOp op);
    void enqueue(uint64_t token, const ConnPtr &conn);
    void pumpSendq(const ConnPtr &conn);
    void encodeRequest(uint64_t token, const PendingOp &op,
                       SessionConn &conn);
    void flushTx(const ConnPtr &conn);
    void readAndParse(const ConnPtr &conn);
    void handleReply(const ConnPtr &conn,
                     const net::ClientReplyMsg &reply);
    void adoptMap(const net::ClientReplyMsg &reply);
    /** Route @p key by the adopted slot-owner table, else hash. */
    uint32_t routeShard(Key key) const;
    void markDead(const ConnPtr &conn);
    void complete(uint64_t token, OpResult result);
    void expireOps(TimeNs now);
    /** poll() all live sockets for up to @p timeout_ms. */
    void block(int timeout_ms);

    uint16_t seedPort_;
    uint32_t requestedCredits_;
    bool windowOverridden_ = false;
    ConnPtr seed_;
    std::vector<ConnPtr> conns_;             ///< every live socket
    std::map<uint32_t, ConnPtr> route_;      ///< shard -> connection
    ShardAddressMap addrs_;
    size_t numShards_ = 1;
    uint32_t mapEpoch_ = 0;            ///< adopted map version (0 = none)
    std::vector<uint16_t> slotOwners_; ///< adopted slot → shard table
    uint64_t nextReqId_ = 1; ///< per-session sequence numbers
    std::map<uint64_t, PendingOp> ops_;      ///< in flight or queued
    std::map<uint64_t, OpResult> results_;   ///< completed, not taken
};

} // namespace hermes::app

#endif // HERMES_APP_TCP_SERVICE_HH
