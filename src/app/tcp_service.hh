/**
 * @file
 * TcpKvService: a complete replicated KV service over real TCP — the
 * protocol engines from the simulator, unchanged, behind network sockets
 * with Wings-style batching, serving external clients on every replica's
 * port. This is the "HermesKV as a deployable system" face of the
 * library (the paper's §4 system, with TCP standing in for RDMA).
 */

#ifndef HERMES_APP_TCP_SERVICE_HH
#define HERMES_APP_TCP_SERVICE_HH

#include <memory>
#include <vector>

#include "app/replica_handle.hh"
#include "net/client_msgs.hh"
#include "net/tcp_cluster.hh"

namespace hermes::app
{

/** A running replicated KV service on localhost TCP. */
class TcpKvService
{
  public:
    /**
     * @param protocol   replication protocol to deploy
     * @param nodes      replica count
     * @param options    store/RM/protocol options
     * @param config     TCP transport knobs (base port!)
     * @param num_shards shard count of the deployment's map (the service
     *                   runs ONE replica group, serving shard @p shard_id
     *                   of that map; 1/0 = the unsharded deployment)
     * @param shard_id   which shard this group serves
     *
     * Requests whose shard stamp disagrees with (num_shards, shard_id) —
     * a client routing with a stale map — are rejected with an explicit
     * ClientReplyMsg::Status::WrongShard instead of silently served from
     * the wrong group.
     */
    TcpKvService(Protocol protocol, size_t nodes, ReplicaOptions options,
                 net::TcpConfig config = {}, size_t num_shards = 1,
                 uint32_t shard_id = 0);
    ~TcpKvService();

    /** Bind, mesh-connect, start protocol engines and client handlers. */
    void start();

    /** Stop all node loops. */
    void stop();

    /** Port clients should dial for replica @p id. */
    uint16_t portOf(NodeId id) const { return cluster_.portOf(id); }

    net::TcpCluster &cluster() { return cluster_; }
    ReplicaHandle &replica(NodeId id) { return *replicas_.at(id); }
    size_t numNodes() const { return replicas_.size(); }

    /** Kill one replica (closes its sockets, halts its loop). */
    void crash(NodeId id) { cluster_.crash(id); }

  private:
    void handleClientFrame(NodeId node, net::ClientConnId conn,
                           const std::shared_ptr<net::Message> &msg);

    net::TcpCluster cluster_;
    std::vector<std::unique_ptr<ReplicaHandle>> replicas_;
    size_t numShards_;
    uint32_t shardId_;
};

/**
 * Synchronous KV client for a TcpKvService replica: read/write/cas with
 * blocking calls, as an application would use the service.
 *
 * A sharded deployment's client is constructed with the shard count; it
 * stamps every request with the key's shard id (the stable shardOfKey
 * hash) so the service can reject requests routed with a stale map.
 */
class KvClient
{
  public:
    explicit KvClient(uint16_t port, size_t num_shards = 1)
        : client_(port), numShards_(num_shards)
    {}

    bool connected() const { return client_.connected(); }

    /** @return the value, or nullopt on timeout/disconnect. */
    std::optional<Value> read(Key key, DurationNs timeout = 5_s);

    /** @return true when the write committed. */
    bool write(Key key, Value value, DurationNs timeout = 5_s);

    /** @return whether the CAS applied, or nullopt on timeout. */
    std::optional<bool> cas(Key key, Value expected, Value desired,
                            DurationNs timeout = 5_s);

    /**
     * Status of the last completed call: distinguishes a WrongShard
     * rejection (stale client shard map; re-route after a map refresh)
     * from a genuine timeout/failure. WrongShard replies carry the
     * service's shard map; the client adopts the advertised shard count
     * and retries once when the corrected stamp routes the key to the
     * connected group, so a merely-stale map self-heals and only
     * genuinely misrouted keys surface the error.
     */
    net::ClientReplyMsg::Status lastStatus() const { return lastStatus_; }

    /** The client's current notion of the deployment's shard count. */
    size_t numShards() const { return numShards_; }

  private:
    /** Stamp, send, and on WrongShard re-resolve the map + retry once. */
    std::shared_ptr<net::Message>
    callRerouting(net::ClientRequestMsg &request, DurationNs timeout);

    net::TcpClient client_;
    size_t numShards_ = 1;
    uint64_t nextReqId_ = 1;
    net::ClientReplyMsg::Status lastStatus_ =
        net::ClientReplyMsg::Status::Ok;
};

} // namespace hermes::app

#endif // HERMES_APP_TCP_SERVICE_HH
