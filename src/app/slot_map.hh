/**
 * @file
 * Versioned slot-indirection map: the elastic-sharding routing layer.
 *
 * The key space is hashed onto a fixed universe of kNumSlots slots
 * (`slot = splitmix64(key) % kNumSlots`), and each slot is owned by a
 * shard. Routing is therefore two table-free steps — hash, then one
 * array index — and *rebalancing moves slots, not hash ranges*: growing
 * from S to S+1 shards reassigns only the slots handed to the newcomer,
 * instead of reshuffling nearly every key the way `hash % S` does.
 *
 * The map carries a monotonically increasing epoch. Services advertise
 * (epoch, owner table) in HELLO and WrongShard replies; clients adopt
 * strictly by epoch — a delayed reply from an older generation can
 * never roll a client back — and services reject request stamps from a
 * *future* epoch before indexing anything with them. Migration cutover
 * installs epoch+1 with the moved slots repointed; everything else is
 * untouched.
 */

#ifndef HERMES_APP_SLOT_MAP_HH
#define HERMES_APP_SLOT_MAP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hermes::app
{

/**
 * Fixed slot universe. 1024 is a power of two, so for POWER-OF-TWO
 * shard counts (S | 1024, i.e. 1, 2, 4, 8, …) the uniform map's owner
 * assignment `slot % S` coincides exactly with the legacy
 * `splitmix64(key) % S` placement — the recorded histories and corpus
 * digests, all of which use such counts, carry over unchanged. For any
 * other S (3, 5, 6, 7, …) the two placements differ on the keys in the
 * trailing `1024 % S` slots; that is harmless — every router goes
 * through the same slotOfKey → owner table — but it is a different
 * placement than pre-slot-map `hash % S` deployments used.
 */
constexpr uint32_t kNumSlots = 1024;

/** The slot owning @p key (pure, stable across nodes and runs). */
uint32_t slotOfKey(Key key);

/** A versioned slot → shard ownership table. */
struct SlotMap
{
    /** Monotonic map version; 0 is reserved for "no map adopted yet". */
    uint32_t epoch = 1;
    /** Shard-id space size (owners are < numShards). */
    uint32_t numShards = 1;
    /** Owning shard per slot; size kNumSlots. */
    std::vector<uint16_t> owner;

    /** The epoch-1 uniform map over @p shards: owner[slot] = slot % S. */
    static SlotMap uniform(uint32_t shards);

    uint32_t
    ownerOf(Key key) const
    {
        return owner[slotOfKey(key)];
    }

    uint32_t
    ownerOfSlot(uint32_t slot) const
    {
        return owner[slot];
    }

    /** All slots currently owned by @p shard, ascending. */
    std::vector<uint32_t> slotsOwnedBy(uint32_t shard) const;

    /**
     * The successor map: epoch+1 with @p slots repointed at @p to.
     * Slots not owned by a single source are fine (idempotent re-point).
     */
    SlotMap withSlotsMovedTo(const std::vector<uint32_t> &slots,
                             uint32_t to) const;

    /** The successor map for a deployment growing to @p shards shards. */
    SlotMap withShardCount(uint32_t shards) const;

    bool operator==(const SlotMap &other) const = default;
};

} // namespace hermes::app

#endif // HERMES_APP_SLOT_MAP_HH
