/**
 * @file
 * SimCluster: a fully wired simulated deployment — N assembled replicas
 * of one protocol on a SimRuntime — plus the synchronous convenience API
 * the tests and examples use to poke it.
 */

#ifndef HERMES_APP_CLUSTER_HH
#define HERMES_APP_CLUSTER_HH

#include <memory>
#include <optional>
#include <vector>

#include "app/replica_handle.hh"
#include "sim/runtime.hh"

namespace hermes::app
{

/** Everything needed to spin up a simulated deployment. */
struct ClusterConfig
{
    Protocol protocol = Protocol::Hermes;
    size_t nodes = 5;
    /**
     * Nodes in the initial membership view (0 = all). Extra nodes are
     * spares: they run but start outside the view, ready to join as
     * shadow replicas (§3.4 Recovery).
     */
    size_t initialLive = 0;
    sim::CostModel cost{};
    uint64_t seed = 1;
    ReplicaOptions replica{};
};

/**
 * A simulated cluster. Client operations are injected through submit(),
 * which charges the node's worker CPU for request decode + KVS access the
 * way the paper's worker threads do.
 */
class SimCluster
{
  public:
    explicit SimCluster(ClusterConfig config);
    ~SimCluster();

    SimCluster(const SimCluster &) = delete;
    SimCluster &operator=(const SimCluster &) = delete;

    /** Start RM agents and protocol engines. */
    void start();

    sim::SimRuntime &runtime() { return *runtime_; }
    ReplicaHandle &replica(NodeId id) { return *replicas_.at(id); }
    size_t numNodes() const { return replicas_.size(); }
    const ClusterConfig &config() const { return config_; }
    TimeNs now() const { return runtime_->now(); }

    /** Crash-stop a node (CPU halted, network severed). */
    void crash(NodeId id) { runtime_->crash(id); }

    /** Advance simulated time. */
    void runFor(DurationNs d) { runtime_->runFor(d); }

    // ---- Async client API (through the node's CPU) ----
    void read(NodeId node, Key key, ReplicaHandle::ReadCallback cb);
    void write(NodeId node, Key key, Value value,
               ReplicaHandle::WriteCallback cb);
    void cas(NodeId node, Key key, Value expected, Value desired,
             ReplicaHandle::CasCallback cb);

    // ---- Synchronous helpers (run the sim until the op completes) ----

    /** Read; returns nullopt if the op does not complete within timeout. */
    std::optional<Value> readSync(NodeId node, Key key,
                                  DurationNs timeout = 100_ms);

    /** Write; returns false on timeout. */
    bool writeSync(NodeId node, Key key, Value value,
                   DurationNs timeout = 100_ms);

    /** CAS; returns nullopt on timeout, else whether it applied. */
    std::optional<bool> casSync(NodeId node, Key key, Value expected,
                                Value desired, DurationNs timeout = 100_ms);

    /**
     * Convergence probe: true when every live replica holds the same
     * value and timestamp for @p key and no replica has it non-Valid.
     * Used by the property tests' quiescence assertions.
     */
    bool converged(Key key) const;

  private:
    ClusterConfig config_;
    std::unique_ptr<sim::SimRuntime> runtime_;
    std::vector<std::unique_ptr<ReplicaHandle>> replicas_;
};

} // namespace hermes::app

#endif // HERMES_APP_CLUSTER_HH
