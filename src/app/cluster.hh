/**
 * @file
 * SimCluster: a fully wired simulated deployment — `shards` independent
 * replica groups of one protocol on a single SimRuntime — plus the
 * synchronous convenience API the tests and examples use to poke it.
 *
 * Sharding (the scale-out layer): the key space is partitioned by a
 * stable hash into `shards` shards, each served by its own replica group
 * with its own membership/RM state. Groups never exchange messages;
 * client operations are routed to the owning group by ShardMap. With
 * shards == 1 the cluster degenerates to the paper's single Hermes
 * group, bit-for-bit.
 */

#ifndef HERMES_APP_CLUSTER_HH
#define HERMES_APP_CLUSTER_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/replica_handle.hh"
#include "app/slot_map.hh"
#include "sim/runtime.hh"

namespace hermes::app
{

/**
 * Stable key → shard hash. A pure function of (key, numShards): the same
 * on every node and across runs, which is what makes client-side routing
 * coordination-free. num_shards <= 1 (including 0, an unknown/garbage
 * client map) degenerates to shard 0 — callers never divide by a stamp;
 * services additionally reject a disagreeing count before hashing at all.
 */
uint32_t shardOfKey(Key key, size_t num_shards);

/**
 * Key → shard id → replica node-id set. Shard `s` of `S` owns the keys
 * with shardOfKey(key, S) == s and is served by the contiguous node-id
 * block [s*R, (s+1)*R) for R replicas per shard. Contiguous blocks keep
 * global node ids dense (the sim indexes CPUs by id) and make
 * shard-of-node a division.
 */
class ShardMap
{
  public:
    ShardMap(size_t shards, size_t replicas_per_shard);

    size_t numShards() const { return groups_.size(); }
    size_t replicasPerShard() const { return replicasPerShard_; }
    size_t totalNodes() const { return groups_.size() * replicasPerShard_; }

    /** The shard owning @p key. */
    uint32_t
    shardOf(Key key) const
    {
        return shardOfKey(key, groups_.size());
    }

    /** Global node ids of @p shard 's replica group. */
    const NodeSet &nodesOf(uint32_t shard) const { return groups_.at(shard); }

    /** First node id of @p shard 's block. */
    NodeId
    baseOf(uint32_t shard) const
    {
        return static_cast<NodeId>(shard * replicasPerShard_);
    }

    /** The shard served by @p node. */
    uint32_t
    shardOfNode(NodeId node) const
    {
        return static_cast<uint32_t>(node / replicasPerShard_);
    }

    /** Route: the @p replica_index -th replica of @p key 's group. */
    NodeId
    nodeFor(Key key, size_t replica_index) const
    {
        return nodesOf(shardOf(key)).at(replica_index % replicasPerShard_);
    }

  private:
    size_t replicasPerShard_;
    std::vector<NodeSet> groups_;
};

/** Everything needed to spin up a simulated deployment. */
struct ClusterConfig
{
    Protocol protocol = Protocol::Hermes;
    /** Replicas per shard group (the paper's replication degree). */
    size_t nodes = 5;
    /** Independent shard groups; total sim nodes = shards * nodes. */
    size_t shards = 1;
    /**
     * Nodes in the initial membership view of each group (0 = all).
     * Extra nodes are spares: they run but start outside the view, ready
     * to join as shadow replicas (§3.4 Recovery).
     */
    size_t initialLive = 0;
    sim::CostModel cost{};
    uint64_t seed = 1;
    ReplicaOptions replica{};
    /**
     * Directory for per-node write-ahead logs; empty = durability off
     * (the default, matching the paper's in-memory Hermes). With a
     * directory set, node `id` logs to `<walDir>/node<id>.wal` and
     * crashRestartNode() can rebuild a replica from that file mid-run.
     * Sim costs for the log ride the cost model's walAppendPerByteNs /
     * fsyncNs knobs.
     */
    std::string walDir;
    /** fsync policy for the per-node WALs (walDir non-empty only). */
    store::FsyncPolicy walFsync = store::FsyncPolicy::Group;
    /**
     * TEST-ONLY fault shim: when non-zero, a Hermes write submitted to a
     * replica whose view epoch has reached this value is acknowledged to
     * the client *before* the protocol commits it (the write itself
     * still runs). This plants a latent ack-before-commit bug that only
     * manifests after a reconfiguration — the self-test target the
     * fault-schedule explorer must find and shrink. Never set outside
     * the explorer self-test.
     */
    Epoch buggyAckBeforeCommitAtEpoch = 0;
};

/**
 * A simulated cluster. Client operations are injected through submit(),
 * which charges the node's worker CPU for request decode + KVS access the
 * way the paper's worker threads do. The caller (or routeNode) must pick
 * a node in the target key's shard group.
 */
class SimCluster
{
  public:
    explicit SimCluster(ClusterConfig config);
    ~SimCluster();

    SimCluster(const SimCluster &) = delete;
    SimCluster &operator=(const SimCluster &) = delete;

    /** Start RM agents and protocol engines. */
    void start();

    sim::SimRuntime &runtime() { return *runtime_; }
    ReplicaHandle &replica(NodeId id) { return *replicas_.at(id); }
    size_t numNodes() const { return replicas_.size(); }
    size_t numShards() const { return shardMap_.numShards(); }
    size_t replicasPerShard() const { return shardMap_.replicasPerShard(); }
    const ShardMap &shardMap() const { return shardMap_; }
    const ClusterConfig &config() const { return config_; }
    TimeNs now() const { return runtime_->now(); }

    /**
     * The shard owning @p key under the cluster's LIVE slot map — equal
     * to the uniform shardOfKey placement until a migration moves slots,
     * after which routing follows the installed ownership.
     */
    uint32_t shardOf(Key key) const { return slotMap_.ownerOf(key); }

    /** The live versioned slot → shard ownership map. */
    const SlotMap &slotMap() const { return slotMap_; }

    /** The @p replica_index -th replica of @p key 's shard group. */
    NodeId
    routeNode(Key key, size_t replica_index = 0) const
    {
        const NodeSet &group = shardMap_.nodesOf(shardOf(key));
        return group.at(replica_index % group.size());
    }

    /**
     * Crash-aware routing: the @p replica_index -th replica of @p key 's
     * group if alive, else the lowest-id live replica of that group
     * (deterministic client failover), else kInvalidNode when the whole
     * group is down.
     */
    NodeId
    liveRouteNode(Key key, size_t replica_index = 0) const
    {
        return liveNodeOfShard(shardOf(key), replica_index);
    }

    /** liveRouteNode for a caller that already hashed the key. */
    NodeId liveNodeOfShard(uint32_t shard, size_t replica_index) const;

    /** Crash-stop a node (CPU halted, network severed). */
    void crash(NodeId id) { runtime_->crash(id); }

    /**
     * Crash-and-recover fault primitive (Hermes with walDir set only):
     * crash-stop @p id if it is still alive, shrink its group's view so
     * the survivors keep committing, then restart it as a fresh replica
     * that replays its WAL and rejoins as a §3.4 shadow via state
     * transfer from the lowest-id live survivor. The choreography is
     * submitted as jobs — the caller advances the sim (runFor) to play
     * it out; the node is operational once the transfer completes.
     */
    void crashRestartNode(NodeId id);

    // ---- Live slot migration (Hermes only) ----

    /**
     * Start a live migration of @p slots from shard @p from to shard
     * @p to. The coordinator copies a snapshot of every key in the
     * moving slots to all live destination replicas, then drains
     * catch-up deltas (keys re-dirtied by writes racing the transfer)
     * in rounds; once the dirty set is small it takes the migration
     * lock — new writes to moving slots park instead of applying — does
     * the final drain, and cuts over by installing the epoch+1 map and
     * resubmitting the parked writes to the destination. Writes whose
     * protocol commit straddles the cutover are forwarded to the new
     * owner before their acknowledgement fires, so no acknowledged
     * write is ever lost. If every source replica is lost mid-move the
     * migration ABORTS instead of cutting over (see abortMigration) —
     * ownership, and with it the WAL recovery filter, stays at the
     * source. Runs as scheduled events: advance the sim (runFor) until
     * migrationActive() clears. Slots not owned by @p from are ignored;
     * one migration at a time.
     */
    void migrateSlots(std::vector<uint32_t> slots, uint32_t from,
                      uint32_t to);

    /**
     * Fault-schedule form of migrateSlots: start the migration at
     * absolute sim time @p at (skipped if one is already running then).
     */
    void scheduleMigration(TimeNs at, std::vector<uint32_t> slots,
                           uint32_t from, uint32_t to);

    bool migrationActive() const { return migration_ != nullptr; }
    uint64_t slotsMigrated() const { return slotsMigrated_; }
    uint64_t migrationsCompleted() const { return migrationsCompleted_; }
    /** Migrations abandoned without a cutover (source group lost). */
    uint64_t migrationsAborted() const { return migrationsAborted_; }
    /** Writes parked at the migration lock across all migrations. */
    uint64_t migrationWritesParked() const { return writesParked_; }

    /** Advance simulated time. */
    void runFor(DurationNs d) { runtime_->runFor(d); }

    // ---- Async client API (through the node's CPU) ----
    void read(NodeId node, Key key, ReplicaHandle::ReadCallback cb);
    void write(NodeId node, Key key, ValueRef value,
               ReplicaHandle::WriteCallback cb);
    void cas(NodeId node, Key key, ValueRef expected, ValueRef desired,
             ReplicaHandle::CasCallback cb);

    // ---- Synchronous helpers (run the sim until the op completes) ----

    /** Read; returns nullopt if the op does not complete within timeout. */
    std::optional<Value> readSync(NodeId node, Key key,
                                  DurationNs timeout = 100_ms);

    /** Write; returns false on timeout. */
    bool writeSync(NodeId node, Key key, ValueRef value,
                   DurationNs timeout = 100_ms);

    /** CAS; returns nullopt on timeout, else whether it applied. */
    std::optional<bool> casSync(NodeId node, Key key, ValueRef expected,
                                ValueRef desired,
                                DurationNs timeout = 100_ms);

    /**
     * Convergence probe: true when every live replica of the key's shard
     * group holds the same value and timestamp for @p key and no replica
     * has it non-Valid. Used by the property tests' quiescence assertions.
     */
    bool converged(Key key) const;

  private:
    struct Migration;

    /** Per-node ReplicaOptions: shard-group base, batching, WAL path. */
    ReplicaOptions optionsForNode(uint32_t shard, NodeId id) const;

    /** One timed migration work quantum (copy batch / drain / cutover). */
    void migrationStep();
    void finishMigration();

    /**
     * Abandon the migration without moving ownership: the map stays at
     * its epoch, parked ops are resubmitted to the (still-owning)
     * source. Taken when the Locked-phase wait expires with no
     * operational source replica left — cutover would strand every
     * uncopied acknowledged write behind the recovery ownership filter.
     */
    void abortMigration();

    /** Fence every live source replica's job queue (see Migration). */
    void issueMigrationFences();

    /**
     * Cutover verification scan: true iff every key in a moving slot is
     * Valid on all live operational source replicas (no in-flight write
     * trace) AND its store timestamp matches the last copy we forwarded.
     * Keys with newer commits are queued for re-copy as a side effect.
     */
    bool migrationQuiesced();

    /**
     * Copy @p key 's current (value, ts) from the lowest-id live replica
     * of @p src onto every live replica of @p dst as install jobs;
     * @p done (optional) fires after the last install executed.
     */
    void forwardKeyToShard(Key key, uint32_t src, uint32_t dst,
                           std::function<void()> done);

    /** Completion of a write/cas submitted against a mid-move slot. */
    void movingOpFinish(Key key, uint32_t slot, uint32_t from, uint64_t gen,
                        std::function<void()> deliver);

    ClusterConfig config_;
    ShardMap shardMap_;
    SlotMap slotMap_;
    std::unique_ptr<sim::SimRuntime> runtime_;
    std::vector<std::unique_ptr<ReplicaHandle>> replicas_;
    std::unique_ptr<Migration> migration_;
    uint64_t migrationGen_ = 0;
    uint64_t slotsMigrated_ = 0;
    uint64_t migrationsCompleted_ = 0;
    uint64_t migrationsAborted_ = 0;
    uint64_t writesParked_ = 0;
};

} // namespace hermes::app

#endif // HERMES_APP_CLUSTER_HH
