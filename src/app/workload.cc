#include "app/workload.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "app/cluster.hh"
#include "common/logging.hh"

namespace hermes::app
{

Workload::Workload(const WorkloadConfig &config) : config_(config)
{
    hermes_assert(config_.numKeys > 0);
    if (config_.zipfTheta > 0.0)
        zipf_.emplace(config_.numKeys, config_.zipfTheta);
}

Key
Workload::nextKey(Rng &rng) const
{
    if (zipf_) {
        Key rank = zipf_->next(rng);
        if (config_.scatterKeys) {
            // Multiplicative-hash scatter keeps the rank→key map a pure
            // function (replayable) while spreading hot ranks across
            // the whole universe — and therefore across shard groups.
            // Collisions merely merge two ranks' popularity.
            return mix64(rank + 1) % config_.numKeys;
        }
        return rank;
    }
    return rng.nextBounded(config_.numKeys);
}

WorkloadConfig
workloadMixConfig(WorkloadMix mix, uint64_t num_keys)
{
    WorkloadConfig config;
    config.numKeys = num_keys;
    switch (mix) {
      case WorkloadMix::UniformReadHeavy:
        config.writeRatio = 0.05;
        break;
      case WorkloadMix::ZipfianHotKey:
        config.writeRatio = 0.3;
        config.zipfTheta = 0.99;
        config.scatterKeys = true;
        break;
      case WorkloadMix::RmwHeavy:
        config.writeRatio = 0.5;
        config.casRatio = 0.6;
        config.zipfTheta = 0.6;
        config.scatterKeys = true;
        break;
      case WorkloadMix::WriteStorm:
        config.numKeys = std::max<uint64_t>(num_keys / 8, 1);
        config.writeRatio = 0.9;
        break;
    }
    return config;
}

const char *
workloadMixName(WorkloadMix mix)
{
    switch (mix) {
      case WorkloadMix::UniformReadHeavy: return "uniform-read-heavy";
      case WorkloadMix::ZipfianHotKey: return "zipfian-hot-key";
      case WorkloadMix::RmwHeavy: return "rmw-heavy";
      case WorkloadMix::WriteStorm: return "write-storm";
    }
    return "?";
}

Key
Workload::nextKeyInShard(Rng &rng, uint32_t shard, size_t num_shards) const
{
    hermes_assert(num_shards > 0 && shard < num_shards);
    // Rejection sampling preserves the configured distribution within
    // the shard. Expected num_shards draws per key; the hash spreads
    // keys evenly, so the loop terminates fast for any sane key universe
    // (asserted rather than risked: a universe with no key in the shard
    // would spin forever).
    for (int attempt = 0; attempt < 100000; ++attempt) {
        Key key = nextKey(rng);
        if (shardOfKey(key, num_shards) == shard)
            return key;
    }
    panic("no key of %zu maps to shard %u/%zu", size_t(config_.numKeys),
          shard, num_shards);
}

WorkloadOp
Workload::next(Rng &rng) const
{
    WorkloadOp op;
    op.key = nextKey(rng);
    if (rng.nextBool(config_.writeRatio)) {
        op.kind = (config_.casRatio > 0.0 && rng.nextBool(config_.casRatio))
                      ? WorkloadOp::Kind::Cas
                      : WorkloadOp::Kind::Write;
    } else {
        op.kind = WorkloadOp::Kind::Read;
    }
    return op;
}

Value
Workload::makeValue(uint64_t tag) const
{
    Value value(std::max<size_t>(config_.valueSize, sizeof(uint64_t)), 'x');
    std::memcpy(value.data(), &tag, sizeof(tag));
    return value;
}

uint64_t
Workload::tagOf(const Value &value)
{
    if (value.size() < sizeof(uint64_t))
        return 0;
    uint64_t tag;
    std::memcpy(&tag, value.data(), sizeof(tag));
    return tag;
}

} // namespace hermes::app
