#include "app/workload.hh"

#include <cstdio>
#include <cstring>

#include "app/cluster.hh"
#include "common/logging.hh"

namespace hermes::app
{

Workload::Workload(const WorkloadConfig &config) : config_(config)
{
    hermes_assert(config_.numKeys > 0);
    if (config_.zipfTheta > 0.0)
        zipf_.emplace(config_.numKeys, config_.zipfTheta);
}

Key
Workload::nextKey(Rng &rng) const
{
    if (zipf_)
        return zipf_->next(rng);
    return rng.nextBounded(config_.numKeys);
}

Key
Workload::nextKeyInShard(Rng &rng, uint32_t shard, size_t num_shards) const
{
    hermes_assert(num_shards > 0 && shard < num_shards);
    // Rejection sampling preserves the configured distribution within
    // the shard. Expected num_shards draws per key; the hash spreads
    // keys evenly, so the loop terminates fast for any sane key universe
    // (asserted rather than risked: a universe with no key in the shard
    // would spin forever).
    for (int attempt = 0; attempt < 100000; ++attempt) {
        Key key = nextKey(rng);
        if (shardOfKey(key, num_shards) == shard)
            return key;
    }
    panic("no key of %zu maps to shard %u/%zu", size_t(config_.numKeys),
          shard, num_shards);
}

WorkloadOp
Workload::next(Rng &rng) const
{
    WorkloadOp op;
    op.key = nextKey(rng);
    if (rng.nextBool(config_.writeRatio)) {
        op.kind = (config_.casRatio > 0.0 && rng.nextBool(config_.casRatio))
                      ? WorkloadOp::Kind::Cas
                      : WorkloadOp::Kind::Write;
    } else {
        op.kind = WorkloadOp::Kind::Read;
    }
    return op;
}

Value
Workload::makeValue(uint64_t tag) const
{
    Value value(std::max<size_t>(config_.valueSize, sizeof(uint64_t)), 'x');
    std::memcpy(value.data(), &tag, sizeof(tag));
    return value;
}

uint64_t
Workload::tagOf(const Value &value)
{
    if (value.size() < sizeof(uint64_t))
        return 0;
    uint64_t tag;
    std::memcpy(&tag, value.data(), sizeof(tag));
    return tag;
}

} // namespace hermes::app
