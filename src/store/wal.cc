#include "store/wal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hh"

namespace hermes::store
{

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------

namespace
{

struct Crc32Table
{
    uint32_t entries[256];

    Crc32Table()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
            entries[i] = c;
        }
    }
};

const Crc32Table &
crcTable()
{
    static const Crc32Table table;
    return table;
}

} // namespace

uint32_t
crc32Init()
{
    return 0xFFFFFFFFu;
}

uint32_t
crc32Update(uint32_t state, const void *data, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    const Crc32Table &table = crcTable();
    for (size_t i = 0; i < len; ++i)
        state = table.entries[(state ^ bytes[i]) & 0xFF] ^ (state >> 8);
    return state;
}

uint32_t
crc32Final(uint32_t state)
{
    return state ^ 0xFFFFFFFFu;
}

uint32_t
crc32(const void *data, size_t len)
{
    return crc32Final(crc32Update(crc32Init(), data, len));
}

const char *
toString(FsyncPolicy policy)
{
    switch (policy) {
      case FsyncPolicy::Never: return "never";
      case FsyncPolicy::Group: return "group";
      case FsyncPolicy::Every: return "every";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Wal
// ---------------------------------------------------------------------

Wal::Wal(WalConfig config) : config_(std::move(config))
{
    hermes_assert(!config_.path.empty());
    ScanResult scanned = scan(config_.path);
    recovered_ = std::move(scanned.records);
    stats_.recordsRecovered = recovered_.size();
    stats_.tornBytesDiscarded = scanned.tornBytes;

    fd_ = ::open(config_.path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd_ < 0)
        panic("wal: open(%s) failed: %s", config_.path.c_str(),
              strerror(errno));
    if (scanned.formatVersion < kFormatVersion) {
        // Legacy headerless log: rewrite it in the current format so the
        // file never mixes record layouts. The decoded records go back
        // down fsync'd before this constructor returns — the upgrade
        // must not weaken their durability.
        if (::ftruncate(fd_, 0) != 0)
            panic("wal: ftruncate(%s) failed: %s", config_.path.c_str(),
                  strerror(errno));
        writeFileHeader();
        for (const WalRecord &rec : recovered_)
            encodeRecord(rec.shard, rec.key, rec.ts, rec.flags,
                         rec.mapEpoch, ValueRef::copyOf(rec.value));
        writeQueued();
        fsyncNow();
    } else {
        if (scanned.tornBytes > 0) {
            // Drop the torn tail so the next append starts a well-formed
            // record at the clean prefix instead of gluing onto garbage.
            if (::ftruncate(fd_, static_cast<off_t>(scanned.cleanBytes))
                    != 0)
                panic("wal: ftruncate(%s) failed: %s",
                      config_.path.c_str(), strerror(errno));
        }
        // A brand-new log — or one torn inside the header itself, just
        // truncated to nothing — starts with the format header.
        if (scanned.cleanBytes == 0)
            writeFileHeader();
    }
    if (::lseek(fd_, 0, SEEK_END) < 0)
        panic("wal: lseek(%s) failed: %s", config_.path.c_str(),
              strerror(errno));
}

void
Wal::writeFileHeader()
{
    uint8_t header[kFileHeaderBytes];
    leStore32(header, kFileMagic);
    leStore32(header + 4, kFormatVersion);
    size_t off = 0;
    while (off < sizeof(header)) {
        ssize_t n = ::write(fd_, header + off, sizeof(header) - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            panic("wal: write(%s) failed: %s", config_.path.c_str(),
                  strerror(errno));
        }
        off += static_cast<size_t>(n);
    }
}

Wal::~Wal()
{
    if (fd_ >= 0) {
        // Best-effort final flush: a clean shutdown should not owe the
        // next incarnation a state transfer for already-queued records.
        flush();
        ::close(fd_);
    }
}

void
Wal::setChargeFn(std::function<void(DurationNs)> fn)
{
    chargeFn_ = std::move(fn);
}

void
Wal::clearRecovered()
{
    recovered_.clear();
    recovered_.shrink_to_fit();
}

void
Wal::encodeRecord(uint32_t shard, Key key, Timestamp ts, uint8_t flags,
                  uint32_t map_epoch, const ValueRef &value)
{
    uint8_t payload_header[kPayloadHeaderBytes];
    leStore32(payload_header, shard);
    leStore64(payload_header + 4, key);
    leStore32(payload_header + 12, ts.version);
    leStore32(payload_header + 16, ts.cid);
    payload_header[20] = flags;
    leStore32(payload_header + 21, map_epoch);
    leStore32(payload_header + 25, static_cast<uint32_t>(value.size()));

    uint32_t crc = crc32Update(crc32Init(), payload_header,
                               sizeof(payload_header));
    crc = crc32Final(crc32Update(crc, value.data(), value.size()));

    size_t base = frame_.staging.size();
    frame_.staging.resize(base + kFrameHeaderBytes
                          + sizeof(payload_header));
    leStore32(frame_.staging.data() + base,
              static_cast<uint32_t>(kPayloadHeaderBytes + value.size()));
    leStore32(frame_.staging.data() + base + 4, crc);
    std::memcpy(frame_.staging.data() + base + kFrameHeaderBytes,
                payload_header, sizeof(payload_header));
    if (!value.empty()) {
        if (value.size() > kZeroCopyThreshold) {
            // The ValueRef is immutable and refcounted: holding it until
            // the group-commit writev costs a refcount, not a copy.
            frame_.segments.push_back({frame_.staging.size(), value});
        } else {
            frame_.staging.insert(frame_.staging.end(), value.data(),
                                  value.data() + value.size());
        }
    }
}

void
Wal::append(Key key, Timestamp ts, uint8_t flags, const ValueRef &value)
{
    hermes_assert(fd_ >= 0);
    encodeRecord(config_.shard, key, ts, flags, mapEpoch_, value);

    size_t record_bytes =
        kFrameHeaderBytes + kPayloadHeaderBytes + value.size();
    ++stats_.appends;
    stats_.bytesAppended += record_bytes;
    if (chargeFn_ && config_.appendPerByteNs > 0)
        chargeFn_(static_cast<DurationNs>(config_.appendPerByteNs
                                          * record_bytes));

    if (config_.fsync == FsyncPolicy::Every) {
        // Strict durability: the record is on disk before the append
        // even returns to the protocol transition that produced it.
        writeQueued();
        fsyncNow();
    }
}

void
Wal::flush()
{
    if (frame_.staging.empty() && frame_.segments.empty())
        return; // nothing new since the last window: no write, no fsync
    writeQueued();
    if (config_.fsync == FsyncPolicy::Group)
        fsyncNow();
}

void
Wal::writeQueued()
{
    if (frame_.staging.empty() && frame_.segments.empty())
        return;
    std::vector<iovec> iov;
    iov.reserve(frame_.iovecCount());
    frame_.forEachRun([&iov](const void *data, size_t len) {
        iov.push_back(iovec{const_cast<void *>(data), len});
    });
    // writev caps the vector length (IOV_MAX, commonly 1024); chunk and
    // re-slice partial writes so every queued byte lands exactly once.
    constexpr size_t kMaxIovPerCall = 512;
    size_t idx = 0;
    while (idx < iov.size()) {
        size_t count = std::min(iov.size() - idx, kMaxIovPerCall);
        ssize_t n = ::writev(fd_, iov.data() + idx,
                             static_cast<int>(count));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            panic("wal: writev(%s) failed: %s", config_.path.c_str(),
                  strerror(errno));
        }
        auto written = static_cast<size_t>(n);
        while (written > 0 && idx < iov.size()) {
            if (written >= iov[idx].iov_len) {
                written -= iov[idx].iov_len;
                ++idx;
            } else {
                iov[idx].iov_base =
                    static_cast<uint8_t *>(iov[idx].iov_base) + written;
                iov[idx].iov_len -= written;
                written = 0;
            }
        }
    }
    frame_.staging.clear();
    frame_.segments.clear();
    ++stats_.flushes;
}

void
Wal::fsyncNow()
{
    if (::fsync(fd_) != 0)
        panic("wal: fsync(%s) failed: %s", config_.path.c_str(),
              strerror(errno));
    ++stats_.fsyncs;
    if (chargeFn_ && config_.fsyncNs > 0)
        chargeFn_(config_.fsyncNs);
}

Wal::ScanResult
Wal::scan(const std::string &path)
{
    ScanResult out;
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return out; // first boot: no log yet
    std::vector<uint8_t> buf;
    {
        struct stat st{};
        if (::fstat(fd, &st) == 0 && st.st_size > 0)
            buf.reserve(static_cast<size_t>(st.st_size));
    }
    uint8_t chunk[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // unreadable tail: treat everything after as torn
        }
        if (n == 0)
            break;
        buf.insert(buf.end(), chunk, chunk + n);
    }
    ::close(fd);

    const size_t total = buf.size();
    if (total == 0)
        return out; // empty log: nothing durable yet

    // Decode records of one format generation starting at @p start.
    // @p payload_header_bytes distinguishes the generations: 29 for the
    // current format, 25 for the headerless v1 layout (no slot-map
    // epoch; those records predate elastic sharding, so their epoch is
    // the initial map's, 1). Every early exit is the torn-tail exit.
    auto scanRecords = [&](size_t start, size_t payload_header_bytes,
                           uint32_t map_epoch_default) {
        size_t off = start;
        for (;;) {
            if (total - off < kFrameHeaderBytes)
                break; // truncated mid-header
            uint32_t payload_len = leLoad32(buf.data() + off);
            uint32_t crc = leLoad32(buf.data() + off + 4);
            if (payload_len < payload_header_bytes
                    || payload_len > total - off - kFrameHeaderBytes)
                break; // truncated mid-payload, or a garbage length field
            const uint8_t *payload = buf.data() + off + kFrameHeaderBytes;
            if (crc32(payload, payload_len) != crc)
                break; // bit rot or a torn multi-sector write
            uint32_t value_len =
                leLoad32(payload + payload_header_bytes - 4);
            if (value_len != payload_len - payload_header_bytes)
                break; // internally inconsistent (CRC collision land)
            WalRecord rec;
            rec.shard = leLoad32(payload);
            rec.key = leLoad64(payload + 4);
            rec.ts.version = leLoad32(payload + 12);
            rec.ts.cid = leLoad32(payload + 16);
            rec.flags = payload[20];
            rec.mapEpoch = payload_header_bytes >= kPayloadHeaderBytes
                               ? leLoad32(payload + 21)
                               : map_epoch_default;
            rec.value.assign(reinterpret_cast<const char *>(payload)
                                 + payload_header_bytes,
                             value_len);
            out.records.push_back(std::move(rec));
            off += kFrameHeaderBytes + payload_len;
        }
        out.cleanBytes = off;
        out.tornBytes = total - off;
    };

    if (total < kFileHeaderBytes) {
        // Cut inside the file header itself (a crash during creation):
        // no record fits in fewer bytes under ANY format, so the whole
        // file is a torn tail. The constructor truncates it and writes
        // a fresh header.
        out.cleanBytes = 0;
        out.tornBytes = total;
        return out;
    }

    uint32_t magic = leLoad32(buf.data());
    if (magic == kFileMagic) {
        uint32_t version = leLoad32(buf.data() + 4);
        if (version != kFormatVersion) {
            // A well-formed header from another generation of this code
            // is NOT corruption: silently scanning it as a torn tail
            // would discard the whole log. Refuse loudly instead.
            panic("wal: %s is format version %u, this build reads "
                  "version %u — refusing to discard it as garbage",
                  path.c_str(), version, kFormatVersion);
        }
        scanRecords(kFileHeaderBytes, kPayloadHeaderBytes, 0);
        return out;
    }

    // No magic: the only headerless format ever released is v1 (25-byte
    // record payload header, no slot-map epoch). If the head of the file
    // decodes as v1, it is a pre-upgrade log — hand its records up and
    // let the constructor rewrite it in the current format.
    constexpr size_t kV1PayloadHeaderBytes = 25;
    scanRecords(0, kV1PayloadHeaderBytes, 1);
    if (!out.records.empty()) {
        out.formatVersion = 1;
        return out;
    }

    // Neither a current header nor a v1 prefix: this is not a WAL this
    // build knows how to read. Truncating it to nothing would silently
    // destroy whatever it is — fail loudly and leave the file alone.
    panic("wal: %s matches no known WAL format (no header magic, no "
          "v1 record at the head) — refusing to truncate it",
          path.c_str());
}

} // namespace hermes::store
