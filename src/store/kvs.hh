/**
 * @file
 * The in-memory KVS substrate (paper §4.1): a hash table with seqlock
 * lock-free readers and striped-spinlock writers, extended with the
 * per-key protocol metadata Hermes and the baselines keep next to each
 * value (state, logical timestamp, flags).
 *
 * Concurrency discipline (CRCW, as in ccKVS):
 *  - readers (`read`) walk a bucket chain and copy a matching entry under
 *    its seqlock; they never block and never take locks;
 *  - writers (`withKey`) take the bucket's stripe spinlock, then flip the
 *    entry's seqlock around the mutation, so readers observe either the
 *    old or the new version, never a torn one.
 *
 * Safety of lock-free traversal rests on three store invariants:
 * entries are only ever *prepended* (head is published with release after
 * the entry is fully initialized), `next` pointers are immutable after
 * publication, and keys are never deleted — the replication protocols here
 * have no delete operation, matching the paper's read/write/RMW API.
 * Values live inline in the entry (capacity fixed at construction) so a
 * reader's copy can never chase storage a writer is reallocating.
 */

#ifndef HERMES_STORE_KVS_HH
#define HERMES_STORE_KVS_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/timestamp.hh"
#include "common/types.hh"
#include "common/value_ref.hh"
#include "store/seqlock.hh"

namespace hermes::store
{

class Wal;          // store/wal.hh
class KeyLockTable; // store/wal.hh

/**
 * Per-key replication metadata stored alongside the value. The KVS does
 * not interpret it: `state` and `flags` carry each protocol's per-key
 * state machine (Hermes: Valid/Invalid/Write/Replay/Trans + RMW flag;
 * CRAQ: clean/dirty + committed version in aux).
 */
struct KeyMeta
{
    Timestamp ts{};      ///< logical timestamp of the stored value
    uint8_t state = 0;   ///< protocol-defined state enum
    uint8_t flags = 0;   ///< protocol-defined flag bits
    uint16_t pad = 0;
    uint32_t aux = 0;    ///< protocol-defined (e.g. CRAQ committed version)
};
static_assert(sizeof(KeyMeta) == 16, "KeyMeta is copied under seqlocks");

/** Writer-side view of one entry, valid only inside withKey's closure. */
class KeyRecord
{
  public:
    /** Protocol metadata (mutable). */
    KeyMeta &meta() { return *meta_; }

    /** Current value bytes. */
    std::string_view value() const { return {data_, *len_}; }

    /** Replace the value (must fit the store's value capacity). */
    void
    setValue(std::string_view v)
    {
        hermes_assert(v.size() <= cap_);
        // On the zero-copy receive path this memcpy is the value's ONLY
        // copy after the wire: the decoded message aliases the transport
        // slab and the bytes land here, under the seqlock, exactly once.
        // The size guard keeps a default string_view's null data() out
        // of memcpy (nonnull-attribute UB).
        ValueCopyCounters::countStoreCopy();
        if (!v.empty())
            std::memcpy(data_, v.data(), v.size());
        *len_ = v.size();
    }

    /** @return true if the key existed before this access. */
    bool existed() const { return existed_; }

  private:
    friend class KvStore;
    KeyRecord(KeyMeta *meta, char *data, size_t *len, size_t cap,
              bool existed)
        : meta_(meta), data_(data), len_(len), cap_(cap), existed_(existed)
    {}

    KeyMeta *meta_;
    char *data_;
    size_t *len_;
    size_t cap_;
    bool existed_;
};

/** Result of a lock-free read. */
struct ReadResult
{
    bool found = false;
    KeyMeta meta{};
    Value value;
};

/**
 * Concurrent chained hash table with inline values.
 */
class KvStore
{
  public:
    /**
     * @param capacity_keys   expected number of distinct keys (sizes the
     *                        bucket array; exceeding it only lengthens
     *                        chains, it does not break the store)
     * @param max_value_size  inline value capacity per entry
     */
    KvStore(size_t capacity_keys, size_t max_value_size);
    ~KvStore();

    KvStore(const KvStore &) = delete;
    KvStore &operator=(const KvStore &) = delete;

    /**
     * Lock-free read of key and its metadata via the entry seqlock.
     * Safe to call concurrently with writers from any thread.
     */
    ReadResult read(Key key) const;

    /**
     * Run @p fn on the (possibly fresh) record of @p key with the stripe
     * lock held and the entry seqlock flipped around it. @p fn must be
     * short and non-blocking. Returns @p fn 's result.
     *
     * This is the primitive every protocol transition uses: compare the
     * local timestamp, maybe update value/state, all atomically with
     * respect to readers and other writers.
     */
    template <typename F>
    auto
    withKey(Key key, F &&fn)
    {
        // Recovery-vs-live-write fence: while a WAL replay is in
        // progress (restart window only) every mutation serializes with
        // the replay of the same key through the per-key lock table.
        // Steady state pays one predictable-null pointer check.
        std::unique_lock<std::mutex> recovery_guard;
        if (KeyLockTable *locks =
                recoveryLocks_.load(std::memory_order_acquire))
            recovery_guard = lockRecovery(*locks, key);
        SpinGuard guard(stripes_[stripeOf(key)]);
        bool existed = true;
        Entry *entry = findEntry(key);
        if (!entry) {
            entry = insertLocked(key);
            existed = false;
        }
        entry->lock.writeBegin();
        KeyRecord rec(&entry->meta, entryData(entry), &entry->len,
                      maxValueSize_, existed);
        if constexpr (std::is_void_v<decltype(fn(rec))>) {
            fn(rec);
            entry->lock.writeEnd();
        } else {
            auto result = fn(rec);
            entry->lock.writeEnd();
            return result;
        }
    }

    /**
     * Iterate all present keys. Entries appearing during the iteration may
     * or may not be visited; each visited entry is copied consistently.
     * Used for state transfer to joining shadow replicas (§3.4) and by
     * tests checking replica convergence.
     */
    void forEach(
        const std::function<void(Key, const KeyMeta &, std::string_view)>
            &fn) const;

    /** Number of distinct keys inserted so far. */
    size_t size() const { return size_.load(std::memory_order_relaxed); }

    /** Inline value capacity. */
    size_t maxValueSize() const { return maxValueSize_; }

    /**
     * Attach (or detach, with nullptr) the replica's write-ahead log.
     * Non-owning: the ReplicaHandle owns the Wal and wires its flush to
     * the Env's poll boundary. Protocol engines consult wal() at their
     * value-apply sites to persist before acknowledging.
     */
    void setWal(Wal *wal) { wal_ = wal; }
    Wal *wal() const { return wal_; }

    /**
     * Arm/disarm the per-key recovery lock table (restart replay only;
     * see KeyLockTable). The store does not own the table.
     */
    void
    setRecoveryLocks(KeyLockTable *locks)
    {
        recoveryLocks_.store(locks, std::memory_order_release);
    }

  private:
    struct Entry
    {
        Entry *next = nullptr; // immutable after publication
        Seqlock lock;
        Key key = 0;
        size_t len = 0;
        KeyMeta meta{};
        // value bytes follow the struct inline
    };

    char *
    entryData(Entry *entry) const
    {
        return reinterpret_cast<char *>(entry) + sizeof(Entry);
    }

    const char *
    entryData(const Entry *entry) const
    {
        return reinterpret_cast<const char *>(entry) + sizeof(Entry);
    }

    size_t
    bucketOf(Key key) const
    {
        return mix64(key) & (numBuckets_ - 1);
    }

    size_t
    stripeOf(Key key) const
    {
        return bucketOf(key) & (kNumStripes - 1);
    }

    /** Take @p key 's stripe in @p locks (out of line: wal.hh is not a
     *  header dependency of every KVS user). */
    static std::unique_lock<std::mutex> lockRecovery(KeyLockTable &locks,
                                                     Key key);

    /** Lock-free chain walk; returns nullptr if absent. */
    Entry *findEntry(Key key) const;

    /** Allocate, initialize and publish a new entry (stripe lock held). */
    Entry *insertLocked(Key key);

    size_t numBuckets_;
    size_t maxValueSize_;
    std::vector<std::atomic<Entry *>> buckets_;
    mutable std::vector<Spinlock> stripes_;
    std::atomic<size_t> size_{0};
    Wal *wal_ = nullptr;
    std::atomic<KeyLockTable *> recoveryLocks_{nullptr};

    static constexpr size_t kNumStripes = 1024;
};

} // namespace hermes::store

#endif // HERMES_STORE_KVS_HH
