/**
 * @file
 * Sequence locks for lock-free readers (paper §4.1: the KVS "supports CRCW
 * using seqlocks ... beneficial as they allow for efficient lock-free
 * reads").
 *
 * The counter is even when the protected data is stable and odd while a
 * writer is mid-update. Readers snapshot the counter, copy the data, and
 * retry if the counter moved or was odd; they never block writers, and
 * writers never block readers.
 */

#ifndef HERMES_STORE_SEQLOCK_HH
#define HERMES_STORE_SEQLOCK_HH

#include <atomic>
#include <cstdint>

namespace hermes::store
{

/**
 * A seqlock version counter. Writer mutual exclusion is *not* provided
 * here — the KVS serializes writers with striped spinlocks — so beginWrite
 * simply bumps to odd.
 */
class Seqlock
{
  public:
    /** Reader: snapshot the counter before copying the data. */
    uint64_t
    readBegin() const
    {
        return seq_.load(std::memory_order_acquire);
    }

    /**
     * Reader: validate a copy made after readBegin().
     * @return true if the copy is consistent (no concurrent write).
     */
    bool
    readValidate(uint64_t snapshot) const
    {
        std::atomic_thread_fence(std::memory_order_acquire);
        return snapshot % 2 == 0
               && seq_.load(std::memory_order_relaxed) == snapshot;
    }

    /** Writer: enter the critical section (counter becomes odd). */
    void
    writeBegin()
    {
        seq_.fetch_add(1, std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_release);
    }

    /** Writer: leave the critical section (counter becomes even). */
    void
    writeEnd()
    {
        seq_.fetch_add(1, std::memory_order_release);
    }

  private:
    std::atomic<uint64_t> seq_{0};
};

/** Minimal test-and-test-and-set spinlock for writer striping. */
class Spinlock
{
  public:
    void
    lock()
    {
        for (;;) {
            if (!flag_.exchange(true, std::memory_order_acquire))
                return;
            while (flag_.load(std::memory_order_relaxed)) {
                // spin; writes are short (copy <=1KB)
            }
        }
    }

    void unlock() { flag_.store(false, std::memory_order_release); }

  private:
    std::atomic<bool> flag_{false};
};

/** RAII guard for Spinlock. */
class SpinGuard
{
  public:
    explicit SpinGuard(Spinlock &lock) : lock_(lock) { lock_.lock(); }
    ~SpinGuard() { lock_.unlock(); }

    SpinGuard(const SpinGuard &) = delete;
    SpinGuard &operator=(const SpinGuard &) = delete;

  private:
    Spinlock &lock_;
};

} // namespace hermes::store

#endif // HERMES_STORE_SEQLOCK_HH
