/**
 * @file
 * Per-shard write-ahead log with crash-restart recovery.
 *
 * Hermes in the paper is in-memory; production isn't. Every value a
 * replica applies (coordinator issue, follower INV adoption, state-chunk
 * catch-up — and the analogous apply points of the baselines) is appended
 * here before the acknowledgement that makes it visible can leave the
 * node, following the replicate-and-persist-before-replying contract.
 *
 * On-disk format, frozen by the golden-bytes test (explicit
 * little-endian, same discipline as the wire format in
 * common/serialize.hh). The file opens with an 8-byte header:
 *
 *     offset  size  field
 *     0       u32   magic "HWAL" (0x4C415748 when loaded LE)
 *     4       u32   format version (kFormatVersion)
 *
 * followed by records:
 *
 *     offset  size  field
 *     0       u32   payload length (= 29 + value length)
 *     4       u32   CRC32 (IEEE 802.3, reflected) of the payload bytes
 *     8       u32   shard id                   ─┐
 *     12      u64   key                         │
 *     20      u32   timestamp.version           │
 *     24      u32   timestamp.cid               │ payload
 *     28      u8    flags (bit 0: RMW)          │
 *     29      u32   slot-map epoch at append    │
 *     33      u32   value length                │
 *     37      ...   value bytes                ─┘
 *
 * Versioning: the record payload grew from 25 to 29 bytes when the
 * slot-map epoch stamp landed (format version 2) — a version-1 scanner
 * would misparse every v2 record at the value_len check and discard the
 * whole log as a torn tail. The header makes that impossible: a log
 * written by a DIFFERENT format version is refused loudly (panic) rather
 * than silently truncated, and a headerless v1 log (the only released
 * earlier format) is recognized by its missing magic, decoded with the
 * v1 layout, and rewritten in the current format at open — pre-upgrade
 * durable data survives the upgrade instead of vanishing on restart.
 *
 * The slot-map epoch stamp is what makes recovery elastic-sharding
 * aware: a record appended before a migration cutover may describe a
 * key whose slot has since moved to another shard, and replaying it
 * here would resurrect ownership the map took away. Recovery filters
 * records against the *current* map (see ReplicaHandle::replayWal);
 * the epoch tag records which generation wrote each record.
 *
 * Appends stage into a scatter/gather WireFrame (values above
 * kZeroCopyThreshold ride as ValueRef segments — no copy between the KVS
 * and the disk queue) and group-commit at the same poll-boundary flush
 * the message batcher uses. The fsync policy spans the classic spectrum:
 *
 *  - Never: write() at flush, no fsync — the OS decides when bytes hit
 *    disk. Survives process crashes, not power loss.
 *  - Group: one fsync per poll-boundary flush window (default) — every
 *    record is durable before the reply riding the same flush leaves.
 *  - Every: write+fsync inside append() itself, before the protocol
 *    message that announces the write is even staged.
 *
 * Recovery: scan() walks the log from the start and stops at the first
 * record that is truncated, length-corrupt or CRC-failing — the torn
 * tail a crash mid-write leaves behind is discarded, never replayed and
 * never fatal. Surviving records replay into the KVS (as Invalid: a
 * logged write was not necessarily committed, so it must heal through
 * the protocol's replay/state-transfer path before serving reads).
 */

#ifndef HERMES_STORE_WAL_HH
#define HERMES_STORE_WAL_HH

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/serialize.hh"
#include "common/timestamp.hh"
#include "common/types.hh"
#include "common/value_ref.hh"

namespace hermes::store
{

/** CRC32 (IEEE 802.3, reflected 0xEDB88320) of @p len bytes at @p data. */
uint32_t crc32(const void *data, size_t len);

/** Incremental CRC32: fold @p len more bytes into a running state.
 *  Start from crc32Init(), finish with crc32Final(). */
uint32_t crc32Init();
uint32_t crc32Update(uint32_t state, const void *data, size_t len);
uint32_t crc32Final(uint32_t state);

/** When (not whether) appended records reach the platters. */
enum class FsyncPolicy : uint8_t
{
    Never, ///< write at flush, never fsync
    Group, ///< one fsync per poll-boundary flush window
    Every, ///< write + fsync inside every append
};

const char *toString(FsyncPolicy policy);

struct WalConfig
{
    /** Log file path. Construction requires a non-empty path. */
    std::string path;
    FsyncPolicy fsync = FsyncPolicy::Group;
    /** Shard id stamped into every record (recovery sanity filter). */
    uint32_t shard = 0;
    /**
     * Cost-model charges, forwarded through the charge hook when one is
     * set (the sim wires these to Env::chargeCpu; the TCP transport
     * leaves them unset and pays the real syscalls instead). Zero =
     * uncharged, so default sim histories stay byte-identical.
     */
    double appendPerByteNs = 0.0;
    DurationNs fsyncNs = 0;
};

struct WalStats
{
    uint64_t appends = 0;
    uint64_t bytesAppended = 0; ///< wire bytes queued (header + payload)
    uint64_t flushes = 0;       ///< flush() calls that wrote something
    uint64_t fsyncs = 0;
    uint64_t recordsRecovered = 0;
    uint64_t tornBytesDiscarded = 0;
};

/** One decoded log record, as recovery replays it. */
struct WalRecord
{
    uint32_t shard = 0;
    Key key = 0;
    Timestamp ts{};
    uint8_t flags = 0;
    /** Slot-map epoch the replica served under when this was appended. */
    uint32_t mapEpoch = 0;
    Value value;
};

/**
 * Striped per-key mutexes guarding the recovery-replay-vs-live-write
 * race (the zetascale key-lock pattern): while a restarted replica is
 * replaying its log, an incoming INV for the same key must not interleave
 * with the replay's read-compare-apply. The store takes these around
 * withKey() only while a recovery is in progress (a single pointer check
 * otherwise), so the steady-state write path pays nothing.
 */
class KeyLockTable
{
  public:
    std::unique_lock<std::mutex>
    lock(Key key)
    {
        return std::unique_lock<std::mutex>(
            stripes_[mix64(key) & (kStripes - 1)]);
    }

  private:
    static constexpr size_t kStripes = 256;
    std::array<std::mutex, kStripes> stripes_;
};

/**
 * The per-replica write-ahead log. Single-writer: every call (append,
 * flush) must come from the replica's event-loop/job context, exactly
 * like the KVS write path it shadows.
 */
class Wal
{
  public:
    /** File-header magic, "HWAL" loaded little-endian. */
    static constexpr uint32_t kFileMagic = 0x4C415748u;
    /** On-disk format version this build writes (and reads natively). */
    static constexpr uint32_t kFormatVersion = 2;
    /** File header size: magic word + format-version word. */
    static constexpr size_t kFileHeaderBytes = 8;
    /** Fixed payload bytes before the value (shard..valueLen fields). */
    static constexpr size_t kPayloadHeaderBytes = 29;
    /** Record framing overhead (length prefix + CRC word). */
    static constexpr size_t kFrameHeaderBytes = 8;

    /**
     * Open (creating if absent) the log at config.path, scan it for
     * surviving records — available via recovered() until
     * clearRecovered() — and truncate any torn tail so new appends
     * start from the clean prefix.
     */
    explicit Wal(WalConfig config);
    ~Wal();

    Wal(const Wal &) = delete;
    Wal &operator=(const Wal &) = delete;

    /** Queue one record; under FsyncPolicy::Every, also write+fsync it. */
    void append(Key key, Timestamp ts, uint8_t flags, const ValueRef &value);

    /**
     * Group commit: write every queued record in one gathered writev and
     * fsync per policy. Wired to the Env's poll-boundary flush hook, so
     * records persist before the replies staged in the same window leave.
     */
    void flush();

    /** Cost-model charge hook (sim: Env::chargeCpu). */
    void setChargeFn(std::function<void(DurationNs)> fn);

    /**
     * Slot-map epoch stamped into subsequent records. Updated from the
     * replica's own loop/job context at migration cutover, same
     * single-writer discipline as append().
     */
    void setMapEpoch(uint32_t epoch) { mapEpoch_ = epoch; }
    uint32_t mapEpoch() const { return mapEpoch_; }

    const WalStats &stats() const { return stats_; }
    const WalConfig &config() const { return config_; }

    /** Records recovered by the open-time scan, in append order. */
    const std::vector<WalRecord> &recovered() const { return recovered_; }

    /** Drop the recovered records once replayed (frees their values). */
    void clearRecovered();

    /** Bytes queued and not yet written (group-commit backlog). */
    size_t pendingBytes() const { return frame_.size(); }

    struct ScanResult
    {
        std::vector<WalRecord> records;
        size_t cleanBytes = 0; ///< prefix ending at the last good record
        size_t tornBytes = 0;  ///< discarded tail (0 for a clean log)
        /** Format the log was written in: kFormatVersion for a current
         *  (or missing/empty) log, 1 for a headerless legacy log whose
         *  records were decoded with the v1 layout. The constructor
         *  rewrites a version-1 log in the current format. */
        uint32_t formatVersion = kFormatVersion;
    };

    /**
     * Decode every intact record of the log at @p path, stopping at the
     * first truncated, length-corrupt or CRC-failing one. A missing file
     * scans as empty — a replica's first boot has no log. Torn tails
     * (including a file cut inside the header) are data, not bugs: they
     * are discarded, never thrown on. A file whose header announces a
     * DIFFERENT format version, or that matches no known format at all,
     * is an operator error and panics loudly — silently treating a
     * format mismatch as a torn tail would discard the entire log.
     */
    static ScanResult scan(const std::string &path);

  private:
    /** Frame one record into the group-commit queue. */
    void encodeRecord(uint32_t shard, Key key, Timestamp ts, uint8_t flags,
                      uint32_t map_epoch, const ValueRef &value);
    void writeFileHeader();
    void writeQueued();
    void fsyncNow();

    WalConfig config_;
    uint32_t mapEpoch_ = 1;
    int fd_ = -1;
    WireFrame frame_; ///< group-commit queue (staging + value segments)
    std::function<void(DurationNs)> chargeFn_;
    std::vector<WalRecord> recovered_;
    WalStats stats_;
};

} // namespace hermes::store

#endif // HERMES_STORE_WAL_HH
