#include "store/kvs.hh"

#include <bit>
#include <new>

#include "store/wal.hh"

namespace hermes::store
{

std::unique_lock<std::mutex>
KvStore::lockRecovery(KeyLockTable &locks, Key key)
{
    return locks.lock(key);
}

namespace
{
size_t
roundUpPow2(size_t v)
{
    return std::bit_ceil(v == 0 ? size_t{1} : v);
}
} // namespace

KvStore::KvStore(size_t capacity_keys, size_t max_value_size)
    : numBuckets_(roundUpPow2(capacity_keys)),
      maxValueSize_(max_value_size),
      buckets_(numBuckets_),
      stripes_(kNumStripes)
{
    for (auto &bucket : buckets_)
        bucket.store(nullptr, std::memory_order_relaxed);
}

KvStore::~KvStore()
{
    for (auto &bucket : buckets_) {
        Entry *entry = bucket.load(std::memory_order_relaxed);
        while (entry) {
            Entry *next = entry->next;
            entry->~Entry();
            ::operator delete(entry);
            entry = next;
        }
    }
}

KvStore::Entry *
KvStore::findEntry(Key key) const
{
    Entry *entry =
        buckets_[bucketOf(key)].load(std::memory_order_acquire);
    while (entry) {
        if (entry->key == key)
            return entry;
        entry = entry->next;
    }
    return nullptr;
}

KvStore::Entry *
KvStore::insertLocked(Key key)
{
    void *mem = ::operator new(sizeof(Entry) + maxValueSize_);
    auto *entry = new (mem) Entry();
    entry->key = key;
    std::atomic<Entry *> &head = buckets_[bucketOf(key)];
    entry->next = head.load(std::memory_order_relaxed);
    // Release-publish after the entry is fully initialized so lock-free
    // readers can only ever observe a complete entry.
    head.store(entry, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    return entry;
}

ReadResult
KvStore::read(Key key) const
{
    ReadResult result;
    const Entry *entry = findEntry(key);
    if (!entry)
        return result;
    for (;;) {
        uint64_t snapshot = entry->lock.readBegin();
        if (snapshot % 2 != 0)
            continue; // writer in progress; spin, writes are short
        KeyMeta meta = entry->meta;
        size_t len = entry->len;
        Value value;
        if (len <= maxValueSize_)
            value.assign(entryData(entry), len);
        if (entry->lock.readValidate(snapshot)) {
            result.found = true;
            result.meta = meta;
            result.value = std::move(value);
            return result;
        }
    }
}

void
KvStore::forEach(
    const std::function<void(Key, const KeyMeta &, std::string_view)> &fn)
    const
{
    for (size_t b = 0; b < numBuckets_; ++b) {
        const Entry *entry = buckets_[b].load(std::memory_order_acquire);
        while (entry) {
            // Copy under the seqlock so callers get a consistent view.
            for (;;) {
                uint64_t snapshot = entry->lock.readBegin();
                if (snapshot % 2 != 0)
                    continue;
                KeyMeta meta = entry->meta;
                size_t len = entry->len;
                Value value(entryData(entry), len <= maxValueSize_ ? len : 0);
                if (entry->lock.readValidate(snapshot)) {
                    fn(entry->key, meta, value);
                    break;
                }
            }
            entry = entry->next;
        }
    }
}

} // namespace hermes::store
