/**
 * @file
 * Session-layer bench over the real TCP stack (not SimCluster): how many
 * concurrent pipelined KvSessionClient sessions one epoll-multiplexed
 * deployment sustains, and what pipelining buys over the synchronous
 * one-op-at-a-time client at equal connection count.
 *
 * Three sections, all against live Hermes shard groups on localhost:
 *
 *  a) Session sweep — {10, 100, 1k, 10k} sessions (clamped to the fd
 *     limit), ~40k mixed ops per point, pipeline depth 8, every point's
 *     shard-tagged history run through the linearizability checker.
 *  b) Pipelined vs sync — 16 pipelined sessions vs 16 blocking KvClient
 *     threads pushing the same mix; the ratio is the pipelining win.
 *  c) Over-drive — server grants 8 credits/session, 64 sessions believe
 *     a huge window and flood 1000 writes each; RSS before/after shows
 *     the overload is memory-bounded (overflow waits in kernel buffers
 *     and the clients' own queues, not in replica heaps).
 */

#include <poll.h>
#include <sys/resource.h>

#include <cstdio>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "app/lin_checker.hh"
#include "app/tcp_service.hh"
#include "bench_util.hh"
#include "common/random.hh"

namespace hermes
{
namespace
{

using app::HistOp;
using app::History;
using app::KvClient;
using app::KvSessionClient;
using app::Protocol;
using app::ReplicaOptions;
using app::ShardedTcpDeployment;
using app::TcpKvService;
using bench::csvMode;
using bench::fmt;
using bench::printHeader;
using bench::printRow;

// Port lanes clear of the test suites (21xxx/23xxx/24xxx) and of each
// other: the sweep deployment stays up across sections a and b.
constexpr uint16_t kSweepPort = 26000;
constexpr uint16_t kOverdrivePort = 26800;

constexpr size_t kShards = 4;
constexpr size_t kReplicasPerShard = 3;
constexpr size_t kDepth = 8;       // pipeline depth per session
constexpr size_t kOpsPerPoint = 40000;

TimeNs
wallNowNs()
{
    using namespace std::chrono;
    return duration_cast<nanoseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

ReplicaOptions
benchOptions()
{
    ReplicaOptions options;
    options.storeCapacity = 1 << 16;
    options.maxValueSize = 64;
    options.hermesConfig.mlt = 50_ms; // wall-clock timers
    return options;
}

/** Raise RLIMIT_NOFILE to the hard cap and return how many sessions
 *  fit: each costs two in-process fds (client end + accepted end). */
size_t
maxSessionsForFdLimit()
{
    struct rlimit rl = {};
    getrlimit(RLIMIT_NOFILE, &rl);
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
    getrlimit(RLIMIT_NOFILE, &rl);
    if (rl.rlim_cur < 256)
        return 64;
    return (static_cast<size_t>(rl.rlim_cur) - 128) / 2;
}

/** Current resident set in KiB (not the monotonic getrusage peak —
 *  section c needs before/after deltas within one process). */
size_t
currentRssKb()
{
    FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    long total = 0, resident = 0;
    int got = std::fscanf(f, "%ld %ld", &total, &resident);
    std::fclose(f);
    if (got != 2)
        return 0;
    return static_cast<size_t>(resident) * (sysconf(_SC_PAGESIZE) / 1024);
}

/** Per-shard uniform key pools. Keys are pinned to the issuing session's
 *  seed shard so each session keeps exactly one socket, and the pool is
 *  wide relative to the in-flight op count: the lin checker's state
 *  space is exponential in per-key mutual concurrency. */
std::vector<std::vector<Key>>
buildKeyPools(size_t keys_per_shard, Key first_key)
{
    std::vector<std::vector<Key>> pools(kShards);
    for (Key k = first_key; true; ++k) {
        auto &pool = pools[app::shardOfKey(k, kShards)];
        if (pool.size() < keys_per_shard)
            pool.push_back(k);
        bool full = true;
        for (const auto &p : pools)
            full = full && p.size() >= keys_per_shard;
        if (full)
            break;
    }
    return pools;
}

struct PointResult
{
    size_t ops = 0;
    size_t failures = 0;
    double secs = 0;
    app::LinReport report;
};

const char *
linLabel(const app::LinReport &report)
{
    switch (report.result) {
    case app::LinResult::Ok: return "ok";
    case app::LinResult::Violation: return "VIOLATION";
    case app::LinResult::Inconclusive: return "inconclusive";
    }
    return "?";
}

/**
 * Drive @p n_sessions pipelined sessions to @p total_ops mixed ops
 * (50% read / 40% write / 10% CAS) at depth kDepth, poll()-multiplexed
 * client-side just as the server multiplexes them, and lin-check the
 * merged shard-tagged history.
 */
PointResult
runPipelinedPoint(ShardedTcpDeployment &deployment, size_t n_sessions,
                  size_t total_ops, Key key_base)
{
    // key_base keeps each measurement's key range disjoint from every
    // other run against the shared deployment: the checker assumes
    // genesis initial values, so residue from a previous point would
    // read as a (bogus) violation.
    const size_t keys_per_shard =
        std::max<size_t>(4096, n_sessions * 2);
    auto pools = buildKeyPools(keys_per_shard, key_base);

    std::vector<std::unique_ptr<KvSessionClient>> sessions;
    sessions.reserve(n_sessions);
    for (size_t c = 0; c < n_sessions; ++c)
        sessions.push_back(std::make_unique<KvSessionClient>(
            deployment.portOf(static_cast<uint32_t>(c % kShards))));

    struct Tracked
    {
        uint64_t token;
        HistOp op;
    };
    std::vector<std::deque<Tracked>> outstanding(n_sessions);
    std::vector<size_t> quota(n_sessions, total_ops / n_sessions);
    for (size_t c = 0; c < total_ops % n_sessions; ++c)
        ++quota[c];

    Rng rng(0xBE5C0FFEEull + n_sessions);
    History merged;
    PointResult out;
    size_t done = 0, target = 0;
    for (size_t c = 0; c < n_sessions; ++c)
        target += quota[c];

    auto issueOne = [&](size_t c) {
        KvSessionClient &s = *sessions[c];
        const auto &pool = pools[c % kShards];
        HistOp op;
        op.key = pool[rng.nextBounded(pool.size())];
        op.shard = static_cast<uint32_t>(c % kShards);
        op.invoke = wallNowNs();
        double dice = rng.nextDouble();
        uint64_t token;
        if (dice < 0.5) {
            op.kind = HistOp::Kind::Read;
            token = s.readAsync(op.key, 30_s);
        } else if (dice < 0.9) {
            op.kind = HistOp::Kind::Write;
            op.arg = "b" + std::to_string(rng.next() % 100000);
            token = s.writeAsync(op.key, op.arg, 30_s);
        } else {
            op.kind = HistOp::Kind::Cas;
            op.arg = "b" + std::to_string(rng.next() % 100000);
            if (rng.nextBool(0.5))
                op.expected = Value{};
            else
                op.expected = "alien-" + std::to_string(rng.next());
            token = s.casAsync(op.key, op.expected, op.arg, 30_s);
        }
        --quota[c];
        outstanding[c].push_back(Tracked{token, std::move(op)});
    };

    auto harvestSession = [&](size_t c) {
        sessions[c]->progress();
        auto &queue = outstanding[c];
        for (auto it = queue.begin(); it != queue.end();) {
            auto result = sessions[c]->take(it->token);
            if (!result) {
                ++it;
                continue;
            }
            ++done;
            if (result->completed
                && result->status == net::ClientReplyMsg::Status::Ok) {
                HistOp op = std::move(it->op);
                op.response = wallNowNs();
                op.result = std::move(result->value);
                op.casApplied = result->casApplied;
                merged.add(std::move(op));
            } else {
                ++out.failures;
            }
            it = queue.erase(it);
        }
        // Refill AFTER the scan: push_back invalidates deque iterators.
        while (quota[c] > 0 && queue.size() < kDepth)
            issueOne(c);
    };

    const TimeNs start = wallNowNs();
    for (size_t c = 0; c < n_sessions; ++c)
        while (quota[c] > 0 && outstanding[c].size() < kDepth)
            issueOne(c);

    std::vector<struct pollfd> pfds;
    std::vector<size_t> owner; // pfds[i] belongs to sessions[owner[i]]
    while (done < target) {
        pfds.clear();
        owner.clear();
        for (size_t c = 0; c < n_sessions; ++c) {
            if (outstanding[c].empty())
                continue;
            for (int fd : sessions[c]->fds()) {
                pfds.push_back({fd, POLLIN, 0});
                owner.push_back(c);
            }
        }
        int ready = ::poll(pfds.data(),
                           static_cast<nfds_t>(pfds.size()), 20);
        if (ready > 0) {
            for (size_t i = 0; i < pfds.size(); ++i)
                if (pfds[i].revents != 0)
                    harvestSession(owner[i]);
        } else {
            // Timeout: sweep everyone so op expiries still surface.
            for (size_t c = 0; c < n_sessions; ++c)
                if (!outstanding[c].empty())
                    harvestSession(c);
        }
    }
    out.secs = (wallNowNs() - start) / 1e9;
    out.ops = done;
    out.report = app::checkShardedHistory(merged);
    return out;
}

/** 16 blocking KvClient threads pushing the same op mix — the baseline
 *  the pipelined sessions are measured against at equal fan-in. */
double
runSyncBaseline(ShardedTcpDeployment &deployment, size_t n_clients,
                size_t total_ops, Key key_base)
{
    auto pools = buildKeyPools(4096, key_base);
    std::vector<std::thread> threads;
    const TimeNs start = wallNowNs();
    for (size_t c = 0; c < n_clients; ++c) {
        threads.emplace_back([&, c] {
            KvClient client(
                deployment.portOf(static_cast<uint32_t>(c % kShards)));
            Rng rng(0x5EC0ull + c);
            const auto &pool = pools[c % kShards];
            size_t my_ops = total_ops / n_clients;
            for (size_t i = 0; i < my_ops; ++i) {
                Key key = pool[rng.nextBounded(pool.size())];
                double dice = rng.nextDouble();
                if (dice < 0.5)
                    client.read(key, 30_s);
                else if (dice < 0.9)
                    client.write(key,
                                 "s" + std::to_string(rng.next() % 100000),
                                 30_s);
                else
                    client.cas(key, Value{},
                               "s" + std::to_string(rng.next() % 100000),
                               30_s);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    return (wallNowNs() - start) / 1e9;
}

void
sessionSweep(ShardedTcpDeployment &deployment, size_t max_sessions)
{
    printHeader("bench_sessions a: concurrent-session sweep "
                "(S=4x3 TCP, depth 8, mixed 50r/40w/10c)");
    printRow({"sessions", "ops", "secs", "kops_s", "failures", "lin"});
    Key key_base = 1;
    for (size_t n : {size_t{10}, size_t{100}, size_t{1000},
                     size_t{10000}}) {
        size_t sessions = n;
        if (sessions > max_sessions) {
            std::printf("# %zu sessions clamped to %zu by RLIMIT_NOFILE\n",
                        n, max_sessions);
            sessions = max_sessions;
        }
        PointResult point =
            runPipelinedPoint(deployment, sessions, kOpsPerPoint,
                              key_base);
        key_base += 1000000;
        printRow({std::to_string(sessions), std::to_string(point.ops),
                  fmt(point.secs, 2), fmt(point.ops / point.secs / 1e3, 1),
                  std::to_string(point.failures), linLabel(point.report)});
        if (!point.report.ok())
            std::printf("# lin detail: %s\n",
                        point.report.detail.c_str());
    }
}

void
pipelinedVsSync(ShardedTcpDeployment &deployment)
{
    printHeader("bench_sessions b: pipelined vs sync at 16 connections");
    printRow({"mode", "ops", "secs", "kops_s"});
    constexpr size_t kConns = 16;
    constexpr size_t kOps = 8000;
    double sync_secs =
        runSyncBaseline(deployment, kConns, kOps, 10000001);
    PointResult piped =
        runPipelinedPoint(deployment, kConns, kOps, 11000001);
    printRow({"sync", std::to_string(kOps), fmt(sync_secs, 2),
              fmt(kOps / sync_secs / 1e3, 1)});
    printRow({"pipelined", std::to_string(piped.ops), fmt(piped.secs, 2),
              fmt(piped.ops / piped.secs / 1e3, 1)});
    printRow({"speedup", "", "",
              fmt((piped.ops / piped.secs) / (kOps / sync_secs), 2)});
}

void
overdrive()
{
    printHeader("bench_sessions c: over-drive (8 server credits, "
                "64 sessions x 1000 queued writes)");
    net::TcpConfig config;
    config.basePort = kOverdrivePort;
    config.clientSessionCredits = 8;
    TcpKvService service(Protocol::Hermes, kReplicasPerShard,
                         benchOptions(), config);
    service.start();
    net::TcpCluster::resetSessionStats();

    constexpr size_t kFloodSessions = 64;
    constexpr size_t kFloodOps = 1000;
    size_t rss_before = currentRssKb();
    std::vector<std::unique_ptr<KvSessionClient>> sessions;
    for (size_t c = 0; c < kFloodSessions; ++c) {
        sessions.push_back(
            std::make_unique<KvSessionClient>(service.portOf(0)));
        sessions.back()->overrideWindow(1u << 20);
    }
    const TimeNs start = wallNowNs();
    for (size_t c = 0; c < kFloodSessions; ++c)
        for (size_t i = 0; i < kFloodOps; ++i)
            sessions[c]->writeAsync(1 + (c * kFloodOps + i) % 2048,
                                    "od" + std::to_string(i), 120_s);
    size_t rss_flooded = currentRssKb();
    size_t completed = 0;
    for (auto &s : sessions)
        completed += s->waitAll();
    double secs = (wallNowNs() - start) / 1e9;
    size_t rss_after = currentRssKb();

    printRow({"ops", "completed", "secs", "max_inflight", "rss_before_kb",
              "rss_flooded_kb", "rss_after_kb"});
    printRow({std::to_string(kFloodSessions * kFloodOps),
              std::to_string(completed), fmt(secs, 2),
              std::to_string(net::TcpCluster::maxSessionInflight()),
              std::to_string(rss_before), std::to_string(rss_flooded),
              std::to_string(rss_after)});
    const size_t growth_kb =
        rss_flooded > rss_before ? rss_flooded - rss_before : 0;
    std::printf("# over-drive RSS growth: %zu KiB (%s); server "
                "in-flight ceiling %zu (granted 8)\n",
                growth_kb,
                growth_kb < 128 * 1024 ? "bounded" : "UNBOUNDED?",
                net::TcpCluster::maxSessionInflight());
}

} // namespace
} // namespace hermes

int
main()
{
    using namespace hermes;
    size_t max_sessions = maxSessionsForFdLimit();

    net::TcpConfig config;
    config.basePort = kSweepPort;
    ShardedTcpDeployment deployment(Protocol::Hermes, kShards,
                                    kReplicasPerShard, benchOptions(),
                                    config);
    deployment.start();

    sessionSweep(deployment, max_sessions);
    pipelinedVsSync(deployment);
    deployment.stop();

    overdrive();
    return 0;
}
