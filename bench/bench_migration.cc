/**
 * @file
 * Elastic-sharding migration bench: what a live 256-slot move costs the
 * workload that races it.
 *
 * Two points over the same S=2x3 Hermes cluster and workload seed:
 *
 *  a) steady state — no migration; baseline ops/s and p99 latency.
 *  b) migrating — at t=15ms a MigrationCoordinator moves 256 of shard
 *     0's slots to shard 1 (snapshot transfer + catch-up deltas +
 *     locked cutover) while the sessions keep issuing; ops/s and p99
 *     are reported for the move window itself, measured against the
 *     same wall window of the steady run so the comparison is
 *     apples-to-apples.
 *
 * Every point records its full history and must pass the sharded
 * linearizability check — a migration that goes fast by losing a write
 * fails the bench, not just the test suite. A per-5ms throughput
 * timeline (fig-9 style) shows the dip and recovery around the move.
 */

#include "app/lin_checker.hh"
#include "bench_util.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

constexpr TimeNs kMigrateAt = 15_ms;
constexpr DurationNs kBucket = 5_ms;
constexpr uint32_t kSlotsToMove = 256;

struct Point
{
    app::DriverResult result;
    TimeNs moveStart = 0;
    TimeNs moveEnd = 0;
    uint64_t slotsMigrated = 0;
    uint64_t writesParked = 0;
    bool linOk = false;
};

/** ops/s and p99 from the history ops completed inside [from, to). */
struct WindowStats
{
    double opsPerSec = 0.0;
    uint64_t p99Ns = 0;
    uint64_t p999Ns = 0;
    uint64_t ops = 0;
};

WindowStats
windowStats(const app::History &history, TimeNs from, TimeNs to)
{
    WindowStats w;
    Histogram lat;
    for (const app::HistOp &op : history.ops()) {
        if (op.isPending() || op.response < from || op.response >= to)
            continue;
        ++w.ops;
        lat.record(op.response - op.invoke);
    }
    double seconds = static_cast<double>(to - from) / 1e9;
    w.opsPerSec = seconds > 0 ? static_cast<double>(w.ops) / seconds : 0;
    w.p99Ns = lat.valueAtQuantile(0.99);
    w.p999Ns = lat.valueAtQuantile(0.999);
    return w;
}

Point
runPoint(bool migrate)
{
    app::ClusterConfig cluster_config =
        standardCluster(app::Protocol::Hermes, 3, 64, 2);
    // Fig-9-style scaled cost model: with ns-scale ops the closed-loop
    // sessions outrun the coordinator's copy rate and the catch-up
    // drain never converges under load; at the scaled calibration the
    // workload-vs-transfer race has the testbed's real proportions.
    cluster_config.cost.clientOpNs = 6_us;
    cluster_config.cost.kvsOpNs = 7_us;
    cluster_config.cost.recvBaseNs = 14_us;
    cluster_config.cost.sendBaseNs = 9_us;
    cluster_config.replica.hermesConfig.mlt = 5_ms;
    app::SimCluster cluster(cluster_config);
    cluster.start();

    Point point;
    point.moveStart = kMigrateAt;
    if (migrate) {
        std::vector<uint32_t> slots = cluster.slotMap().slotsOwnedBy(0);
        slots.resize(kSlotsToMove);
        cluster.scheduleMigration(kMigrateAt, std::move(slots), 0, 1);
        // Self-rescheduling probe: pin down when the cutover lands so
        // the move window can be measured exactly.
        auto poll = std::make_shared<std::function<void()>>();
        *poll = [&cluster, &point, poll] {
            if (cluster.migrationActive() || !cluster.migrationsCompleted()) {
                cluster.runtime().events().scheduleAt(
                    cluster.now() + 250_us, [poll] { (*poll)(); });
                return;
            }
            if (point.moveEnd == 0)
                point.moveEnd = cluster.now();
        };
        cluster.runtime().events().scheduleAt(kMigrateAt + 250_us,
                                              [poll] { (*poll)(); });
    }

    app::DriverConfig driver_config;
    driver_config.workload.numKeys = 4096;
    driver_config.workload.writeRatio = 0.20;
    driver_config.workload.valueSize = 32;
    driver_config.sessionsPerNode = 24;
    driver_config.warmup = 2_ms;
    driver_config.measure = 60_ms;
    driver_config.quiesceAfter = 30_ms;
    driver_config.recordHistory = true;
    driver_config.timelineBucket = kBucket;
    app::LoadDriver driver(cluster, driver_config);
    point.result = driver.run();

    point.slotsMigrated = cluster.slotsMigrated();
    point.writesParked = cluster.migrationWritesParked();
    point.linOk = app::checkShardedHistory(point.result.history, 1u << 22,
                                           app::LinMode::Jit)
                      .ok();
    return point;
}

} // namespace

int
main()
{
    Point steady = runPoint(false);
    Point moving = runPoint(true);
    if (!steady.linOk || !moving.linOk) {
        std::fprintf(stderr, "LINEARIZABILITY CHECK FAILED (steady=%d "
                             "moving=%d)\n",
                     steady.linOk, moving.linOk);
        return 1;
    }
    if (moving.slotsMigrated != kSlotsToMove || moving.moveEnd == 0) {
        std::fprintf(stderr, "migration did not complete (%llu slots)\n",
                     static_cast<unsigned long long>(moving.slotsMigrated));
        return 1;
    }

    printHeader("Elastic migration: 256-slot live move vs steady state "
                "[S=2x3 Hermes, 20% writes, lin-checked]");
    // The move window of the migrating run, and the same wall window of
    // the steady run.
    WindowStats move_w = windowStats(moving.result.history,
                                     moving.moveStart, moving.moveEnd);
    WindowStats base_w = windowStats(steady.result.history,
                                     moving.moveStart, moving.moveEnd);
    printRow({"phase", "window_ms", "ops_per_sec", "p99_us", "p999_us",
              "ops", "writes_parked"});
    double window_ms =
        static_cast<double>(moving.moveEnd - moving.moveStart) / 1e6;
    printRow({"steady", fmt(window_ms, 2), fmt(base_w.opsPerSec, 0),
              fmtUs(base_w.p99Ns), fmtUs(base_w.p999Ns),
              std::to_string(base_w.ops), "0"});
    printRow({"migrating", fmt(window_ms, 2), fmt(move_w.opsPerSec, 0),
              fmtUs(move_w.p99Ns), fmtUs(move_w.p999Ns),
              std::to_string(move_w.ops),
              std::to_string(moving.writesParked)});

    printHeader("Throughput timeline (Mops per 5ms bucket; move marked)");
    printRow({"t(ms)", "steady", "migrating", ""});
    const std::vector<double> &a = steady.result.timelineMops;
    const std::vector<double> &b = moving.result.timelineMops;
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        TimeNs t = i * kBucket;
        bool in_move = t + kBucket > moving.moveStart && t < moving.moveEnd;
        printRow({std::to_string(t / 1_ms), fmt(a[i], 3), fmt(b[i], 3),
                  in_move ? "<< move" : ""});
    }
    std::printf("# move window %.2fms, %llu slots, %llu writes parked\n",
                window_ms,
                static_cast<unsigned long long>(moving.slotsMigrated),
                static_cast<unsigned long long>(moving.writesParked));
    return 0;
}
