/**
 * @file
 * Shared plumbing of the figure/table benchmarks: the calibrated cost
 * model, standard cluster/driver builders, and paper-style table output.
 *
 * Absolute magnitudes depend on the cost model (see DESIGN.md §5); what
 * these harnesses are built to reproduce is the *shape* of each figure:
 * protocol ordering, relative factors, crossover points. EXPERIMENTS.md
 * records paper-vs-measured per figure.
 */

#ifndef HERMES_BENCH_BENCH_UTIL_HH
#define HERMES_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "app/cluster.hh"
#include "app/driver.hh"
#include "app/protocols.hh"

namespace hermes::bench
{

/** The shared simulated-testbed calibration (paper §5.2's machines). */
inline sim::CostModel
paperCostModel()
{
    sim::CostModel cost; // defaults are the calibrated values
    return cost;
}

/** Cluster of @p protocol with the standard bench store sizing. */
inline app::ClusterConfig
standardCluster(app::Protocol protocol, size_t nodes,
                size_t max_value = 64, size_t shards = 1)
{
    app::ClusterConfig config;
    config.protocol = protocol;
    config.nodes = nodes;
    config.shards = shards;
    config.cost = paperCostModel();
    // The paper gives rZAB RDMA multicast for its leader-heavy traffic.
    config.cost.multicastOffload = protocol == app::Protocol::Zab;
    config.replica.storeCapacity = 1 << 17;
    config.replica.maxValueSize = max_value;
    return config;
}

/** Standard measurement windows: short but with millions of samples. */
inline app::DriverConfig
standardDriver(double write_ratio, double zipf_theta = 0.0,
               size_t sessions_per_node = 160)
{
    app::DriverConfig config;
    config.workload.numKeys = 100000; // paper: 1M (scaled with the window)
    config.workload.writeRatio = write_ratio;
    config.workload.zipfTheta = zipf_theta;
    config.workload.valueSize = 32;
    config.sessionsPerNode = sessions_per_node;
    config.warmup = 1_ms;
    config.measure = 4_ms;
    return config;
}

/** Run one sharded point: @p shards groups of @p replicas each. */
inline app::DriverResult
runShardedPoint(app::Protocol protocol, size_t shards, size_t replicas,
                const app::DriverConfig &driver_config, uint64_t seed = 1)
{
    app::ClusterConfig cluster_config =
        standardCluster(protocol, replicas, 64, shards);
    cluster_config.seed = seed;
    app::SimCluster cluster(cluster_config);
    cluster.start();
    app::LoadDriver driver(cluster, driver_config);
    return driver.run();
}

/** Run one (protocol, workload) point and return the measurements. */
inline app::DriverResult
runPoint(app::Protocol protocol, size_t nodes,
         const app::DriverConfig &driver_config, uint64_t seed = 1)
{
    return runShardedPoint(protocol, 1, nodes, driver_config, seed);
}

// ---- Table printing ----

/**
 * CSV mode: when HERMES_BENCH_CSV is set, rows come out comma-separated
 * and headers as '#' comment lines, so the nightly CI job can archive
 * the figures as machine-diffable CSV artifacts.
 */
inline bool
csvMode()
{
    return std::getenv("HERMES_BENCH_CSV") != nullptr;
}

inline void
printHeader(const std::string &title)
{
    if (csvMode())
        std::printf("\n# %s\n", title.c_str());
    else
        std::printf("\n=== %s ===\n", title.c_str());
}

inline void
printRow(const std::vector<std::string> &cells, int width = 14)
{
    if (csvMode()) {
        for (size_t i = 0; i < cells.size(); ++i)
            std::printf("%s%s", i ? "," : "", cells[i].c_str());
        std::printf("\n");
        return;
    }
    for (const std::string &cell : cells)
        std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int precision = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string
fmtUs(uint64_t ns)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", ns / 1e3);
    return buf;
}

} // namespace hermes::bench

#endif // HERMES_BENCH_BENCH_UTIL_HH
