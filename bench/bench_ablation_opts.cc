/**
 * @file
 * Ablations of Hermes' design choices (paper §3.3 optimizations plus the
 * design properties §3.1 credits for its performance):
 *
 *  O1  skip-VAL-on-conflict .... VAL messages saved under contention
 *  O2  virtual node ids ........ conflict-win fairness across nodes
 *  O3  ACK broadcasting ........ stalled-read latency under skew
 *  inter-key concurrency ....... throughput of concurrent independent
 *                                writes vs a serialized ablation
 *  mlt calibration ............. spurious replays vs recovery latency
 */

#include <cstdlib>
#include <filesystem>

#include "app/lin_checker.hh"
#include "bench_util.hh"
#include "hermes/replica.hh"
#include "store/wal.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

/** Lin-check failures across sweeps; a non-zero count fails the run so
 *  the nightly job catches consistency regressions, not just readers
 *  diffing CSV artifacts. */
int g_linFailures = 0;

app::DriverResult
runHermes(const proto::HermesConfig &hermes_config,
          const app::DriverConfig &driver_config, double loss = 0.0)
{
    app::ClusterConfig cluster_config =
        standardCluster(app::Protocol::Hermes, 5);
    cluster_config.replica.hermesConfig = hermes_config;
    app::SimCluster cluster(cluster_config);
    cluster.start();
    if (loss > 0)
        cluster.runtime().network().setLossProbability(loss);
    app::DriverConfig config = driver_config;
    app::LoadDriver driver(cluster, config);
    app::DriverResult result = driver.run();
    // Aggregate protocol counters for the ablation report.
    uint64_t vals_skipped = 0, replays = 0, retransmits = 0;
    uint64_t stalled = 0;
    for (NodeId n = 0; n < 5; ++n) {
        const proto::HermesStats &stats =
            cluster.replica(n).hermes()->stats();
        vals_skipped += stats.valsSkipped;
        replays += stats.replaysStarted;
        retransmits += stats.invRetransmits;
        stalled += stats.readsStalled;
    }
    std::printf("    [valsSkipped=%llu replays=%llu retransmits=%llu "
                "readsStalled=%llu]\n",
                (unsigned long long)vals_skipped,
                (unsigned long long)replays,
                (unsigned long long)retransmits,
                (unsigned long long)stalled);
    return result;
}

void
ablationO1()
{
    printHeader("O1: skip VAL broadcasts on conflicted writes "
                "[zipf 0.99, 50% writes]");
    for (bool on : {true, false}) {
        proto::HermesConfig hermes_config;
        hermes_config.skipValOnConflict = on;
        app::DriverConfig driver = standardDriver(0.5, 0.99, 32);
        driver.workload.numKeys = 64; // heavy same-key contention
        driver.measure = 2_ms;
        std::printf("  O1=%s:\n", on ? "on " : "off");
        app::DriverResult result = runHermes(hermes_config, driver);
        std::printf("    throughput %.1f MReq/s\n", result.throughputMops);
    }
}

void
ablationO2()
{
    printHeader("O2: virtual node ids -> conflict-win fairness "
                "[3 nodes, same-key conflicts]");
    for (unsigned vids : {1u, 8u}) {
        app::ClusterConfig cluster_config =
            standardCluster(app::Protocol::Hermes, 3);
        cluster_config.cost.netJitterNs = 0;
        cluster_config.replica.hermesConfig.virtualIdsPerNode = vids;
        app::SimCluster cluster(cluster_config);
        cluster.start();
        int wins[3] = {0, 0, 0};
        for (int round = 0; round < 200; ++round) {
            Key key = 5000 + round;
            cluster.write(0, key, "n0", [] {});
            cluster.write(1, key, "n1", [] {});
            cluster.write(2, key, "n2", [] {});
            cluster.runFor(3_ms);
            Value winner = cluster.readSync(0, key).value_or("");
            if (winner.size() == 2)
                ++wins[winner[1] - '0'];
        }
        std::printf("  vids=%u: wins n0=%d n1=%d n2=%d\n", vids, wins[0],
                    wins[1], wins[2]);
    }
}

void
ablationO3()
{
    printHeader("O3: ACK broadcast -> stalled-read latency "
                "[zipf 0.99, 20% writes]");
    for (bool on : {false, true}) {
        proto::HermesConfig hermes_config;
        hermes_config.ackBroadcast = on;
        app::DriverConfig driver = standardDriver(0.2, 0.99, 32);
        driver.workload.numKeys = 256;
        driver.measure = 2_ms;
        std::printf("  O3=%s:\n", on ? "on " : "off");
        app::DriverResult result = runHermes(hermes_config, driver);
        std::printf("    read p99 %.1f us, throughput %.1f MReq/s\n",
                    result.readLatencyNs.p99() / 1e3,
                    result.throughputMops);
    }
}

void
ablationInterKey()
{
    printHeader("Inter-key concurrency vs serialized writes "
                "[uniform, 20% writes]");
    for (bool concurrent : {true, false}) {
        proto::HermesConfig hermes_config;
        hermes_config.interKeyConcurrency = concurrent;
        app::DriverConfig driver = standardDriver(0.2, 0.0, 32);
        driver.measure = 2_ms;
        std::printf("  inter-key=%s:\n", concurrent ? "on " : "off");
        app::DriverResult result = runHermes(hermes_config, driver);
        std::printf("    throughput %.1f MReq/s, write p99 %.1f us\n",
                    result.throughputMops,
                    result.writeLatencyNs.p99() / 1e3);
    }
}

void
ablationLscFree()
{
    printHeader("LSC-free reads (paper section 8): lease-free "
                "linearizable reads vs leased local reads "
                "[uniform, 5% writes]");
    for (bool on : {false, true}) {
        proto::HermesConfig hermes_config;
        hermes_config.lscFreeReads = on;
        app::DriverConfig driver = standardDriver(0.05, 0.0, 32);
        driver.measure = 2_ms;
        std::printf("  lscFree=%s:\n", on ? "on " : "off");
        app::DriverResult result = runHermes(hermes_config, driver);
        std::printf("    read med %.1f us / p99 %.1f us, throughput %.1f "
                    "MReq/s\n",
                    result.readLatencyNs.median() / 1e3,
                    result.readLatencyNs.p99() / 1e3,
                    result.throughputMops);
    }
}

void
ablationBatching()
{
    // The per-peer batching layer (net/batcher.hh) amortizes the fixed
    // per-message send/recv costs that dominate the broadcast-heavy
    // write path at small values. Sweep the window cap on Hermes and
    // both non-offloaded baselines, with batching off (maxBatchMsgs=0)
    // as the baseline row, and re-verify linearizability on every point:
    // coalescing must never change what the histories admit.
    printHeader("Per-peer batching: write throughput vs window cap "
                "[uniform, 100% writes, 32B values, 5 nodes]");
    printRow({"protocol", "batching", "maxMsgs", "MReq/s", "speedup",
              "linCheck"});
    for (app::Protocol protocol :
         {app::Protocol::Hermes, app::Protocol::Craq,
          app::Protocol::Zab}) {
        double baseline = 0.0;
        for (int max_msgs : {0, 4, 16, 64}) {
            app::ClusterConfig cluster_config =
                standardCluster(protocol, 5);
            cluster_config.cost.maxBatchMsgs = max_msgs;
            app::SimCluster cluster(cluster_config);
            cluster.start();
            app::DriverConfig driver = standardDriver(1.0, 0.0, 160);
            driver.measure = 3_ms;
            driver.quiesceAfter = 2_ms;
            driver.recordHistory = true;
            app::LoadDriver load(cluster, driver);
            app::DriverResult result = load.run();
            app::LinReport lin = app::checkShardedHistory(result.history);
            g_linFailures += !lin.ok();
            if (max_msgs == 0)
                baseline = result.throughputMops;
            printRow({app::protocolName(protocol),
                      max_msgs > 1 ? "on" : "off", fmt(max_msgs, 0),
                      fmt(result.throughputMops),
                      fmt(result.throughputMops
                              / std::max(baseline, 1e-9),
                          2),
                      lin.ok() ? "ok" : "FAIL"});
        }
    }
}

void
ablationZeroCopy()
{
    // The zero-copy value path (refcounted ValueRefs + scatter/gather
    // encode + slab-aliasing decode) eliminates the legacy path's four
    // software copies per hop down to the single memcpy into the KVS
    // entry. The cost model charges those copies per value byte when the
    // path is ablated off (CostModel::zeroCopy = false), so the win
    // scales with the object size — negligible at the paper's 32 B
    // floor, decisive at KiB objects. Every point re-verifies
    // linearizability: aliasing buffers must never change what the
    // histories admit.
    printHeader("Zero-copy value path: write throughput vs value size "
                "[uniform, 100% writes, 5 nodes]");
    printRow({"valueBytes", "zeroCopy", "MReq/s", "speedup", "linCheck"});
    for (size_t value_size : {32u, 128u, 512u, 1024u, 4096u}) {
        double copy_path = 0.0;
        for (bool zero_copy : {false, true}) {
            app::ClusterConfig cluster_config = standardCluster(
                app::Protocol::Hermes, 5, /*max_value=*/4096);
            cluster_config.cost.zeroCopy = zero_copy;
            cluster_config.replica.storeCapacity = 1 << 13;
            app::SimCluster cluster(cluster_config);
            cluster.start();
            app::DriverConfig driver = standardDriver(1.0, 0.0, 160);
            driver.workload.numKeys = 4096; // bound KiB-entry memory
            driver.workload.valueSize = value_size;
            driver.measure = 3_ms;
            driver.quiesceAfter = 2_ms;
            driver.recordHistory = true;
            app::LoadDriver load(cluster, driver);
            app::DriverResult result = load.run();
            app::LinReport lin = app::checkShardedHistory(result.history);
            g_linFailures += !lin.ok();
            if (!zero_copy)
                copy_path = result.throughputMops;
            printRow({fmt(value_size, 0), zero_copy ? "on" : "off",
                      fmt(result.throughputMops),
                      fmt(result.throughputMops
                              / std::max(copy_path, 1e-9),
                          2),
                      lin.ok() ? "ok" : "FAIL"});
        }
    }
}

void
ablationDurability()
{
    // The per-node write-ahead log (store/wal.hh) trades write
    // throughput for crash-restart durability. The sim charges
    // walAppendPerByteNs per logged byte plus one fsyncNs per flush —
    // at-poll-boundary for Group (the group-commit default), per-record
    // for Every. "off" (no walDir) is the paper's in-memory Hermes and
    // the baseline row. Every point re-verifies linearizability:
    // logging must never change what the histories admit.
    printHeader("Durability: WAL fsync policy vs value size "
                "[uniform, 100% writes, 5 nodes]");
    printRow({"valueBytes", "wal", "MReq/s", "slowdown", "linCheck"});
    char wal_root[] = "/tmp/hermes-bench-wal-XXXXXX";
    if (!mkdtemp(wal_root)) {
        std::fprintf(stderr, "  mkdtemp failed; skipping sweep\n");
        return;
    }
    int point = 0;
    for (size_t value_size : {32u, 128u, 512u, 1024u, 4096u}) {
        double in_memory = 0.0;
        struct Policy {
            const char *name;
            bool durable;
            store::FsyncPolicy fsync;
        };
        for (const Policy &policy :
             {Policy{"off", false, store::FsyncPolicy::Never},
              Policy{"group", true, store::FsyncPolicy::Group},
              Policy{"every", true, store::FsyncPolicy::Every}}) {
            app::ClusterConfig cluster_config = standardCluster(
                app::Protocol::Hermes, 5, /*max_value=*/4096);
            if (policy.durable) {
                std::string dir = std::string(wal_root) + "/point"
                                  + std::to_string(point++);
                std::filesystem::create_directories(dir);
                cluster_config.walDir = dir;
                cluster_config.walFsync = policy.fsync;
            }
            cluster_config.replica.storeCapacity = 1 << 13;
            app::SimCluster cluster(cluster_config);
            cluster.start();
            app::DriverConfig driver = standardDriver(1.0, 0.0, 160);
            driver.workload.numKeys = 4096; // bound KiB-entry memory
            driver.workload.valueSize = value_size;
            driver.measure = 3_ms;
            driver.quiesceAfter = 2_ms;
            driver.recordHistory = true;
            app::LoadDriver load(cluster, driver);
            app::DriverResult result = load.run();
            app::LinReport lin = app::checkShardedHistory(result.history);
            g_linFailures += !lin.ok();
            if (!policy.durable)
                in_memory = result.throughputMops;
            printRow({fmt(value_size, 0), policy.name,
                      fmt(result.throughputMops),
                      fmt(in_memory
                              / std::max(result.throughputMops, 1e-9),
                          2),
                      lin.ok() ? "ok" : "FAIL"});
        }
    }
    std::error_code ec;
    std::filesystem::remove_all(wal_root, ec);
}

void
ablationMlt()
{
    printHeader("mlt calibration under 2% message loss "
                "[uniform, 20% writes]");
    for (DurationNs mlt : {30_us, 100_us, 400_us, 2000_us}) {
        proto::HermesConfig hermes_config;
        hermes_config.mlt = mlt;
        app::DriverConfig driver = standardDriver(0.2, 0.0, 16);
        driver.measure = 3_ms;
        std::printf("  mlt=%lluus:\n", (unsigned long long)(mlt / 1000));
        app::DriverResult result = runHermes(hermes_config, driver, 0.02);
        std::printf("    write p99 %.1f us, throughput %.1f MReq/s\n",
                    result.writeLatencyNs.p99() / 1e3,
                    result.throughputMops);
    }
}

} // namespace

int
main()
{
    std::printf("Hermes design-choice ablations (DESIGN.md section 4)\n");
    ablationO1();
    ablationO2();
    ablationO3();
    ablationInterKey();
    ablationLscFree();
    ablationBatching();
    ablationZeroCopy();
    ablationDurability();
    ablationMlt();
    if (g_linFailures > 0) {
        std::fprintf(stderr, "%d lin-checked sweep point(s) FAILED\n",
                     g_linFailures);
        return 1;
    }
    return 0;
}
