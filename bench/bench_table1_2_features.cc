/**
 * @file
 * Tables 1 and 2 of the paper: the feature matrix of high-performance
 * replication and the read/write feature comparison of the evaluated
 * systems, generated from each protocol's machine-readable traits (so
 * the table cannot drift from the implementations).
 */

#include "bench_util.hh"

using namespace hermes;
using namespace hermes::bench;

int
main()
{
    printHeader("Table 1: features for high-performance replication");
    std::printf("Reads : local + load-balanced (any replica, no "
                "inter-replica messages)\nWrites: decentralized + "
                "inter-key concurrent + fast (min round-trips)\n");
    printRow({"system", "local reads", "decentral.", "inter-key", "fast"},
             13);
    for (app::Protocol protocol : app::allProtocols()) {
        const app::ProtocolTraits &traits = app::traitsOf(protocol);
        bool fast_writes = std::string(traits.writeLatency) == "1 RTT";
        printRow({traits.name, traits.localReads ? "yes" : "no",
                  traits.decentralizedWrites ? "yes" : "no",
                  std::string(traits.writeConcurrency) == "inter-key"
                      ? "yes"
                      : "no",
                  fast_writes ? "yes (1 RTT)" : traits.writeLatency},
                 13);
    }

    printHeader("Table 2: read/write features of the evaluated systems");
    printRow({"System", "Leases", "Consistency", "Concurrency",
              "Latency(RTT)", "Dec."},
             13);
    for (app::Protocol protocol : app::allProtocols()) {
        const app::ProtocolTraits &traits = app::traitsOf(protocol);
        printRow({traits.name, traits.leases, traits.consistency,
                  traits.writeConcurrency, traits.writeLatency,
                  traits.decentralizedWrites ? "yes" : "no"},
                 13);
    }
    std::printf("\nRMW support: ");
    for (app::Protocol protocol : app::allProtocols()) {
        const app::ProtocolTraits &traits = app::traitsOf(protocol);
        std::printf("%s=%s ", traits.name, traits.supportsRmw ? "yes" : "no");
    }
    std::printf("\n");
    return 0;
}
