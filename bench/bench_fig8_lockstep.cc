/**
 * @file
 * Figure 8: HermesKV (single worker thread) vs the Derecho-like
 * lock-step total-order baseline, write-only, object sizes 32B..1KB on
 * 5 nodes.
 *
 * Paper shape to reproduce: Hermes wins by roughly an order of magnitude
 * at 32B; the gap narrows (to a few x) at 1KB as per-byte costs dominate
 * both protocols; both curves fall as objects grow.
 */

#include "bench_util.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

double
run(app::Protocol protocol, size_t object_size)
{
    app::ClusterConfig cluster_config =
        standardCluster(protocol, 5, /*max_value=*/1024);
    // Fairness to Derecho's limited threading (§6.5): one worker thread.
    // With a single handler thread there is no DMA/copy parallelism, so
    // payload bytes cost more per byte than in the 20-worker setup.
    cluster_config.cost.workerThreads = 1;
    cluster_config.cost.recvPerByteNs = 0.3;
    cluster_config.cost.sendPerByteNs = 0.3;
    // Derecho-like: small delivery batches, SST scan per round.
    cluster_config.replica.lockstepConfig.roundBatchCap = 2;
    cluster_config.replica.lockstepConfig.roundOverheadNs = 4_us;
    app::SimCluster cluster(cluster_config);
    cluster.start();

    app::DriverConfig driver_config = standardDriver(1.0);
    driver_config.workload.valueSize = object_size;
    driver_config.workload.numKeys = 10000;
    driver_config.sessionsPerNode = 16;
    driver_config.measure = 5_ms;
    app::LoadDriver driver(cluster, driver_config);
    return driver.run().throughputMops;
}

} // namespace

int
main()
{
    std::printf("Figure 8: HermesKV (single thread) vs Derecho-like "
                "lock-step total order\n[write-only, 5 nodes]\n");
    printHeader("throughput (MReq/s) vs object size");
    printRow({"object", "HermesKV-1t", "Derecho-like", "speedup"});
    for (size_t object_size : {32, 256, 1024}) {
        double hermes_mops = run(app::Protocol::Hermes, object_size);
        double lockstep_mops = run(app::Protocol::Lockstep, object_size);
        printRow({std::to_string(object_size) + "B", fmt(hermes_mops, 2),
                  fmt(lockstep_mops, 2),
                  fmt(hermes_mops / std::max(lockstep_mops, 1e-9), 1) + "x"});
    }
    return 0;
}
