/**
 * @file
 * Figure 9: HermesKV throughput over time when a replica fails, with the
 * paper's conservative 150ms RM timeout [5 nodes, uniform], at 1/5/20%
 * write ratios.
 *
 * Paper shape to reproduce: throughput collapses almost immediately
 * after the failure (every live node's writes block on the dead node's
 * ACKs and closed-loop sessions pile up behind them); after the failure
 * timeout + lease expiry the survivors agree on an m-update in
 * microseconds; steady-state throughput recovers slightly below the
 * pre-failure level (one replica fewer).
 *
 * The cost model is scaled up ~100x here so that 400ms of simulated time
 * stays cheap to simulate; shapes are unaffected (see DESIGN.md §5-6).
 */

#include "bench_util.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

constexpr DurationNs kBucket = 10_ms;
constexpr TimeNs kCrashTime = 100_ms;
constexpr DurationNs kRunTime = 400_ms;

std::vector<double>
timeline(double write_ratio)
{
    app::ClusterConfig cluster_config =
        standardCluster(app::Protocol::Hermes, 5);
    cluster_config.cost.clientOpNs = 6_us;
    cluster_config.cost.kvsOpNs = 7_us;
    cluster_config.cost.recvBaseNs = 14_us;
    cluster_config.cost.sendBaseNs = 9_us;
    cluster_config.replica.enableRm = true;
    cluster_config.replica.rmConfig.failureTimeout = 150_ms; // the paper's
    cluster_config.replica.rmConfig.heartbeatInterval = 5_ms;
    cluster_config.replica.rmConfig.leaseDuration = 20_ms;
    cluster_config.replica.hermesConfig.mlt = 5_ms;
    app::SimCluster cluster(cluster_config);
    cluster.start();
    cluster.runtime().events().scheduleAt(kCrashTime,
                                          [&cluster] { cluster.crash(4); });

    app::DriverConfig driver_config;
    driver_config.workload.numKeys = 10000;
    driver_config.workload.writeRatio = write_ratio;
    driver_config.sessionsPerNode = 24;
    driver_config.warmup = 0;
    driver_config.measure = kRunTime;
    driver_config.timelineBucket = kBucket;
    app::LoadDriver driver(cluster, driver_config);
    return driver.run().timelineMops;
}

} // namespace

int
main()
{
    std::printf("Figure 9: HermesKV under failure "
                "[5 nodes, uniform, crash at t=100ms, timeout=150ms]\n"
                "throughput per 10ms bucket (MReq/s); crash marked '<<'\n");
    std::vector<std::vector<double>> lines;
    for (double ratio : {0.01, 0.05, 0.20})
        lines.push_back(timeline(ratio));

    printRow({"t(ms)", "1% writes", "5% writes", "20% writes"});
    for (size_t bucket = 0; bucket + 1 < lines[0].size(); ++bucket) {
        TimeNs t = bucket * kBucket;
        std::string marker =
            (t <= kCrashTime && kCrashTime < t + kBucket) ? "  <<" : "";
        printRow({std::to_string(t / 1_ms) + marker, fmt(lines[0][bucket]),
                  fmt(lines[1][bucket]), fmt(lines[2][bucket])});
    }

    // Summary: pre-failure level, blocked level, recovered level.
    printHeader("summary (MReq/s)");
    printRow({"write%", "before", "during-block", "recovered"});
    const double ratios[3] = {1, 5, 20};
    for (size_t i = 0; i < lines.size(); ++i) {
        auto avg = [&](size_t from_ms, size_t to_ms) {
            double sum = 0;
            size_t count = 0;
            for (size_t b = from_ms / 10; b < to_ms / 10
                                          && b < lines[i].size();
                 ++b, ++count)
                sum += lines[i][b];
            return count ? sum / count : 0.0;
        };
        printRow({fmt(ratios[i], 0), fmt(avg(40, 100)),
                  fmt(avg(120, 240)), fmt(avg(320, 400))});
    }
    return 0;
}
