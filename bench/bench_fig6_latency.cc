/**
 * @file
 * Figure 6: latency analysis on 5 nodes.
 *  (a) median + 99th latency vs throughput at 5% writes (load sweep);
 *  (b) read/write median + 99th vs write ratio, uniform;
 *  (c) the same under Zipfian 0.99.
 *
 * Paper shape to reproduce: all medians are read-like and low; Hermes'
 * write tail is a single round-trip and stays several times below
 * CRAQ's O(n)-hop writes at matched load; under skew CRAQ's *read* tail
 * degrades too (dirty reads pile onto the tail node), while Hermes reads
 * only ever wait out one write.
 */

#include "bench_util.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

void
latencyVsThroughput()
{
    printHeader("Figure 6a: latency vs throughput [uniform, 5% writes]");
    printRow({"protocol", "sessions", "MReq/s", "med(us)", "p99(us)"});
    for (app::Protocol protocol :
         {app::Protocol::Hermes, app::Protocol::Craq, app::Protocol::Zab}) {
        for (size_t sessions : {4, 8, 16, 32, 64, 128}) {
            app::DriverConfig driver = standardDriver(0.05, 0.0, sessions);
            driver.measure = 3_ms;
            app::DriverResult result = runPoint(protocol, 5, driver);
            Histogram all = result.readLatencyNs;
            all.merge(result.writeLatencyNs);
            printRow({app::protocolName(protocol), std::to_string(sessions),
                      fmt(result.throughputMops), fmtUs(all.median()),
                      fmtUs(all.p99())});
        }
    }
}

void
latencyVsWriteRatio(const char *title, double zipf_theta)
{
    printHeader(title);
    printRow({"write%", "protocol", "rd-med", "rd-p99", "wr-med", "wr-p99"},
             12);
    // "At the peak throughput of CRAQ": a fixed moderate load point.
    constexpr size_t kSessions = 32;
    for (double ratio : {0.01, 0.05, 0.20, 0.50, 0.75, 1.00}) {
        for (app::Protocol protocol :
             {app::Protocol::Hermes, app::Protocol::Craq}) {
            app::DriverConfig driver =
                standardDriver(ratio, zipf_theta, kSessions);
            driver.measure = 3_ms;
            app::DriverResult result = runPoint(protocol, 5, driver);
            printRow({fmt(ratio * 100, 0), app::protocolName(protocol),
                      fmtUs(result.readLatencyNs.median()),
                      fmtUs(result.readLatencyNs.p99()),
                      fmtUs(result.writeLatencyNs.median()),
                      fmtUs(result.writeLatencyNs.p99())},
                     12);
        }
    }
}

} // namespace

int
main()
{
    std::printf("Figure 6: latency analysis (us) [5 nodes, 32B values]\n");
    latencyVsThroughput();
    latencyVsWriteRatio("Figure 6b: latency vs write ratio [uniform]", 0.0);
    latencyVsWriteRatio("Figure 6c: latency vs write ratio [zipf 0.99]",
                        0.99);
    return 0;
}
