/**
 * @file
 * Figure 7: scalability with the replication degree (3, 5, 7 nodes) at
 * 1% and 20% write ratios, uniform traffic.
 *
 * Paper shape to reproduce: Hermes scales near-linearly at 1% writes and
 * keeps its lead at 20%; CRAQ's longer chain loads the tail (its 20%
 * throughput degrades from 5 to 7 nodes); ZAB gains read capacity but
 * its leader chokes at 20% writes as the replica count grows.
 *
 * Beyond the paper: scale-out with sharded key-space partitioning. One
 * replica group's throughput caps at one group's worth of CPUs no matter
 * the protocol; the second sweep fixes the replication degree at 3 and
 * grows the shard count S = 1, 2, 4, 8 (each shard an independent
 * group), reporting *aggregate* throughput. Every protocol scales
 * near-linearly — sharding composes with, rather than competes against,
 * the intra-group protocol — which is what lets HermesKV serve traffic
 * far past a single group.
 *
 * Part c is the real-deployment twin of part b: the same S = 1, 2, 4, 8
 * sweep against ShardedTcpDeployment — S per-shard Hermes groups over
 * real localhost sockets, one event-loop thread per replica — driven by
 * 4 synchronous KvClient threads per shard (weak scaling). Every point
 * records a shard-tagged history and is linearizability-checked before
 * its throughput is reported; a cell reads "LINFAIL" if the check ever
 * rejects. Aggregate scaling here is bounded by the host's cores (the
 * sim sweep charges modelled costs; this one spends real CPU), so the
 * sweep prints the core count next to the numbers.
 */

#include <atomic>
#include <chrono>
#include <thread>

#include "app/lin_checker.hh"
#include "app/tcp_service.hh"
#include "bench_util.hh"
#include "common/random.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

/** One TCP sweep point: aggregate client-visible MReq/s, lin-checked. */
struct TcpPoint
{
    double mops = 0.0;
    size_t measuredOps = 0;
    bool linOk = false;
    size_t failures = 0;
};

TimeNs
wallNowNs()
{
    using namespace std::chrono;
    return duration_cast<nanoseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Stand up S Hermes groups of 3 replicas on real sockets and drive them
 * with 4 blocking KvClient threads per shard (uniform keys, 5% writes,
 * 32B values) for @p warmup + @p measure. The whole recorded history
 * (warmup included — a measured read may observe a warmup write) is
 * shard-tagged and checked; throughput counts only ops completing inside
 * the measure window.
 */
TcpPoint
runTcpShardedPoint(size_t shards, uint16_t base_port,
                   DurationNs warmup = 200_ms, DurationNs measure = 1_s)
{
    app::ReplicaOptions options;
    options.storeCapacity = 1 << 14;
    options.maxValueSize = 64;
    options.hermesConfig.mlt = 50_ms; // wall-clock timers
    net::TcpConfig config;
    config.basePort = base_port;
    app::ShardedTcpDeployment deployment(app::Protocol::Hermes, shards, 3,
                                         options, config);
    deployment.start();

    constexpr int kClientsPerShard = 4;
    constexpr Key kKeySpace = 4096;
    const int clients = static_cast<int>(shards) * kClientsPerShard;
    std::vector<app::History> histories(clients);
    std::vector<size_t> measured(clients, 0);
    std::atomic<size_t> failures{0};
    const TimeNs t_measure = wallNowNs() + warmup;
    const TimeNs t_end = t_measure + measure;

    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            app::KvClient client(
                deployment.portOf(c % shards, c % 3));
            Rng rng(0xF167'0000 + c);
            for (;;) {
                app::HistOp op;
                op.key = 1 + rng.nextBounded(kKeySpace);
                op.shard = app::shardOfKey(op.key, shards);
                op.invoke = wallNowNs();
                if (op.invoke >= t_end)
                    break;
                bool completed = false;
                if (rng.nextDouble() < 0.05) {
                    op.kind = app::HistOp::Kind::Write;
                    op.arg = "s" + std::to_string(shards) + "c"
                             + std::to_string(c) + "-"
                             + std::to_string(histories[c].size());
                    completed = client.write(op.key, op.arg, 20_s);
                } else {
                    op.kind = app::HistOp::Kind::Read;
                    auto got = client.read(op.key, 20_s);
                    completed = got.has_value();
                    if (completed)
                        op.result = *got;
                }
                op.response = wallNowNs();
                if (!completed) {
                    ++failures;
                    continue;
                }
                if (op.response >= t_measure && op.response < t_end)
                    ++measured[c];
                histories[c].add(std::move(op));
            }
        });
    }
    for (auto &t : threads)
        t.join();
    deployment.stop();

    app::History merged;
    for (const app::History &h : histories)
        for (const app::HistOp &op : h.ops())
            merged.add(op);

    TcpPoint point;
    point.failures = failures.load();
    for (size_t n : measured)
        point.measuredOps += n;
    point.mops = point.measuredOps / (measure / 1e9) / 1e6;
    point.linOk = app::checkShardedHistory(merged).ok();
    return point;
}

} // namespace

int
main()
{
    std::printf("Figure 7: throughput (MReq/s) vs replication degree "
                "[uniform, 32B values]\n");
    for (double ratio : {0.01, 0.20}) {
        printHeader(("write ratio " + fmt(ratio * 100, 0) + "%").c_str());
        printRow({"protocol", "3 nodes", "5 nodes", "7 nodes"});
        for (app::Protocol protocol :
             {app::Protocol::Hermes, app::Protocol::Craq,
              app::Protocol::Zab}) {
            std::vector<std::string> row{app::protocolName(protocol)};
            for (size_t nodes : {3, 5, 7}) {
                app::DriverConfig driver = standardDriver(ratio);
                row.push_back(
                    fmt(runPoint(protocol, nodes, driver).throughputMops));
            }
            printRow(row);
        }
    }

    std::printf("\nFigure 7b: aggregate throughput (MReq/s) vs shard "
                "count [3 replicas/shard, 5%% writes, uniform, 32B]\n");
    printHeader("scale-out via sharded key-space partitioning");
    printRow({"protocol", "S=1", "S=2", "S=4", "S=8", "x(S=4/S=1)"});
    for (app::Protocol protocol : app::allProtocols()) {
        if (!app::traitsOf(protocol).shardable)
            continue;
        std::vector<std::string> row{app::protocolName(protocol)};
        double base = 0.0;
        double at4 = 0.0;
        for (size_t shards : {1, 2, 4, 8}) {
            app::DriverConfig driver = standardDriver(0.05);
            double mops =
                runShardedPoint(protocol, shards, 3, driver).throughputMops;
            if (shards == 1)
                base = mops;
            if (shards == 4)
                at4 = mops;
            row.push_back(fmt(mops));
        }
        row.push_back(base > 0 ? fmt(at4 / base) : "n/a");
        printRow(row);
    }

    std::printf("\nFigure 7c: real-deployment twin — aggregate TCP "
                "throughput (MReq/s) vs shard count\n[Hermes, 3 "
                "replicas/shard, 4 clients/shard, 5%% writes, uniform, "
                "32B; every point lin-checked; host cores: %u]\n",
                std::thread::hardware_concurrency());
    printHeader("scale-out over real sockets (ShardedTcpDeployment)");
    printRow({"protocol", "S=1", "S=2", "S=4", "S=8", "x(S=4/S=1)"});
    {
        std::vector<std::string> row{"hermes-tcp"};
        double base = 0.0;
        double at4 = 0.0;
        uint16_t port = 24000;
        for (size_t shards : {1, 2, 4, 8}) {
            TcpPoint point = runTcpShardedPoint(shards, port);
            port = static_cast<uint16_t>(port + 64);
            if (!point.linOk || point.failures != 0) {
                row.push_back(point.linOk ? "OPFAIL" : "LINFAIL");
                continue;
            }
            if (shards == 1)
                base = point.mops;
            if (shards == 4)
                at4 = point.mops;
            row.push_back(fmt(point.mops, 3));
        }
        row.push_back(base > 0 ? fmt(at4 / base) : "n/a");
        printRow(row);
    }
    return 0;
}
