/**
 * @file
 * Figure 7: scalability with the replication degree (3, 5, 7 nodes) at
 * 1% and 20% write ratios, uniform traffic.
 *
 * Paper shape to reproduce: Hermes scales near-linearly at 1% writes and
 * keeps its lead at 20%; CRAQ's longer chain loads the tail (its 20%
 * throughput degrades from 5 to 7 nodes); ZAB gains read capacity but
 * its leader chokes at 20% writes as the replica count grows.
 *
 * Beyond the paper: scale-out with sharded key-space partitioning. One
 * replica group's throughput caps at one group's worth of CPUs no matter
 * the protocol; the second sweep fixes the replication degree at 3 and
 * grows the shard count S = 1, 2, 4, 8 (each shard an independent
 * group), reporting *aggregate* throughput. Every protocol scales
 * near-linearly — sharding composes with, rather than competes against,
 * the intra-group protocol — which is what lets HermesKV serve traffic
 * far past a single group.
 */

#include "bench_util.hh"

using namespace hermes;
using namespace hermes::bench;

int
main()
{
    std::printf("Figure 7: throughput (MReq/s) vs replication degree "
                "[uniform, 32B values]\n");
    for (double ratio : {0.01, 0.20}) {
        printHeader(("write ratio " + fmt(ratio * 100, 0) + "%").c_str());
        printRow({"protocol", "3 nodes", "5 nodes", "7 nodes"});
        for (app::Protocol protocol :
             {app::Protocol::Hermes, app::Protocol::Craq,
              app::Protocol::Zab}) {
            std::vector<std::string> row{app::protocolName(protocol)};
            for (size_t nodes : {3, 5, 7}) {
                app::DriverConfig driver = standardDriver(ratio);
                row.push_back(
                    fmt(runPoint(protocol, nodes, driver).throughputMops));
            }
            printRow(row);
        }
    }

    std::printf("\nFigure 7b: aggregate throughput (MReq/s) vs shard "
                "count [3 replicas/shard, 5%% writes, uniform, 32B]\n");
    printHeader("scale-out via sharded key-space partitioning");
    printRow({"protocol", "S=1", "S=2", "S=4", "S=8", "x(S=4/S=1)"});
    for (app::Protocol protocol : app::allProtocols()) {
        if (!app::traitsOf(protocol).shardable)
            continue;
        std::vector<std::string> row{app::protocolName(protocol)};
        double base = 0.0;
        double at4 = 0.0;
        for (size_t shards : {1, 2, 4, 8}) {
            app::DriverConfig driver = standardDriver(0.05);
            double mops =
                runShardedPoint(protocol, shards, 3, driver).throughputMops;
            if (shards == 1)
                base = mops;
            if (shards == 4)
                at4 = mops;
            row.push_back(fmt(mops));
        }
        row.push_back(base > 0 ? fmt(at4 / base) : "n/a");
        printRow(row);
    }
    return 0;
}
