/**
 * @file
 * Figure 7: scalability with the replication degree (3, 5, 7 nodes) at
 * 1% and 20% write ratios, uniform traffic.
 *
 * Paper shape to reproduce: Hermes scales near-linearly at 1% writes and
 * keeps its lead at 20%; CRAQ's longer chain loads the tail (its 20%
 * throughput degrades from 5 to 7 nodes); ZAB gains read capacity but
 * its leader chokes at 20% writes as the replica count grows.
 */

#include "bench_util.hh"

using namespace hermes;
using namespace hermes::bench;

int
main()
{
    std::printf("Figure 7: throughput (MReq/s) vs replication degree "
                "[uniform, 32B values]\n");
    for (double ratio : {0.01, 0.20}) {
        printHeader(("write ratio " + fmt(ratio * 100, 0) + "%").c_str());
        printRow({"protocol", "3 nodes", "5 nodes", "7 nodes"});
        for (app::Protocol protocol :
             {app::Protocol::Hermes, app::Protocol::Craq,
              app::Protocol::Zab}) {
            std::vector<std::string> row{app::protocolName(protocol)};
            for (size_t nodes : {3, 5, 7}) {
                app::DriverConfig driver = standardDriver(ratio);
                row.push_back(
                    fmt(runPoint(protocol, nodes, driver).throughputMops));
            }
            printRow(row);
        }
    }
    return 0;
}
