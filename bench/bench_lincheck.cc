/**
 * @file
 * Linearizability-checker scaling bench: how far the Wing&Gong DFS
 * stretches, where the just-in-time (Lowe-style) engine takes over, and
 * what the fault-schedule explorer's end-to-end throughput looks like.
 *
 * Three sections:
 *
 *  a) JIT vs DFS sweep — generated valid histories (5-way instantaneous
 *     concurrency) from 1k to 1,000,000 ops; both engines run while the
 *     DFS stays under a wall-clock cut-off, the JIT runs everywhere.
 *  b) Violation latency — a stale read planted at the end of a large
 *     sequential history; time for the JIT to refute it.
 *  c) Explorer throughput — a fixed-seed budget of generated fault
 *     schedules through runSchedule (full cluster sim + fault injection
 *     + full-history check per schedule); reports schedules/sec, the
 *     number the nightly job's budget is provisioned from.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "app/lin_checker.hh"
#include "sim/explorer.hh"
#include "support/history_gen.hh"

namespace hermes
{
namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

void
sweepJitVsDfs()
{
    std::printf("section,ops,engine,verdict,seconds,ops_per_sec\n");
    const size_t kDfsCutoffOps = 200000; // DFS slows past this; skip
    for (size_t n : {1000ul, 10000ul, 100000ul, 1000000ul}) {
        auto ops = test::genLinearizableHistory(42, n, 5000);
        for (bool jit : {false, true}) {
            if (!jit && n > kDfsCutoffOps) {
                std::printf("sweep,%zu,dfs,skipped,,\n", n);
                continue;
            }
            // ~5-way concurrency visits a handful of states per event;
            // scale the budget with history size so the million-op
            // point completes instead of going Inconclusive.
            size_t budget = std::max<size_t>(1u << 22, 128 * n);
            auto start = std::chrono::steady_clock::now();
            app::LinResult r = jit ? app::checkKeyHistoryJit(ops, {}, budget)
                                   : app::checkKeyHistory(ops, {}, budget);
            double s = secondsSince(start);
            std::printf("sweep,%zu,%s,%s,%.3f,%.0f\n", n,
                        jit ? "jit" : "dfs",
                        r == app::LinResult::Ok ? "ok" : "other", s,
                        static_cast<double>(n) / s);
        }
    }
}

void
violationLatency()
{
    auto ops = test::genLinearizableHistory(7, 1000000, 0);
    test::corruptStaleRead(ops);
    auto start = std::chrono::steady_clock::now();
    app::LinResult r = app::checkKeyHistoryJit(ops);
    double s = secondsSince(start);
    std::printf("violation,%zu,jit,%s,%.3f,\n", ops.size(),
                r == app::LinResult::Violation ? "violation" : "MISSED",
                s);
}

void
explorerThroughput()
{
    sim::ExplorerConfig cfg;
    const int kSchedules = 12;
    auto start = std::chrono::steady_clock::now();
    uint64_t ops = 0;
    for (int i = 0; i < kSchedules; ++i) {
        sim::Schedule s = sim::generateSchedule(1000 + i);
        ops += sim::runSchedule(s, cfg).opsTotal;
    }
    double s = secondsSince(start);
    std::printf("explorer,%d,sim,ok,%.3f,%.2f\n", kSchedules, s,
                kSchedules / s);
    std::printf("# explorer: %d schedules, %llu total ops, "
                "%.2f schedules/sec\n",
                kSchedules, static_cast<unsigned long long>(ops),
                kSchedules / s);
}

} // namespace
} // namespace hermes

int
main()
{
    hermes::sweepJitVsDfs();
    hermes::violationLatency();
    hermes::explorerThroughput();
    return 0;
}
