/**
 * @file
 * Figure 1: the qualitative throughput/latency positioning of the
 * membership-based protocols, regenerated quantitatively: one matched
 * workload (5% writes, uniform, 5 nodes, fixed load), reporting each
 * protocol's throughput and tail write latency — the two axes of the
 * paper's quadrant picture (Hermes: high throughput AND low latency;
 * CRAQ: high throughput, high latency; ZAB: neither).
 */

#include "bench_util.hh"

using namespace hermes;
using namespace hermes::bench;

int
main()
{
    std::printf("Figure 1: protocol positioning "
                "[5 nodes, 5%% writes, uniform, matched load]\n");
    printHeader("throughput/latency plane");
    printRow({"protocol", "MReq/s", "write-p99(us)", "quadrant"}, 16);
    struct Point
    {
        const char *name;
        double mops;
        uint64_t p99;
    };
    std::vector<Point> points;
    for (app::Protocol protocol :
         {app::Protocol::Hermes, app::Protocol::Craq, app::Protocol::Zab}) {
        app::DriverConfig driver = standardDriver(0.05, 0.0, 32);
        app::DriverResult result = runPoint(protocol, 5, driver);
        points.push_back({app::protocolName(protocol),
                          result.throughputMops,
                          result.writeLatencyNs.p99()});
    }
    double max_mops = 0;
    uint64_t min_p99 = ~0ull;
    for (const Point &p : points) {
        max_mops = std::max(max_mops, p.mops);
        min_p99 = std::min(min_p99, p.p99);
    }
    for (const Point &p : points) {
        bool high_tput = p.mops > 0.6 * max_mops;
        bool low_lat = p.p99 < 2 * min_p99;
        std::string quadrant =
            std::string(high_tput ? "high-tput" : "low-tput") + "/"
            + (low_lat ? "low-lat" : "high-lat");
        printRow({p.name, fmt(p.mops), fmtUs(p.p99), quadrant}, 16);
    }
    return 0;
}
