/**
 * @file
 * Figure 5: throughput vs write ratio for HermesKV, rCRAQ and rZAB on a
 * 5-node deployment — (a) uniform key popularity and (b) Zipfian 0.99 —
 * plus the §6.1 read-only parity row.
 *
 * Paper shape to reproduce: all protocols tie at read-only; Hermes leads
 * at every write ratio; the Hermes-vs-CRAQ gap widens with the write
 * ratio and under skew (tail hotspot); ZAB collapses as its leader
 * serializes every write.
 */

#include "bench_util.hh"

using namespace hermes;
using namespace hermes::bench;

namespace
{

void
sweep(const char *title, double zipf_theta)
{
    printHeader(title);
    printRow({"write%", "HermesKV", "rCRAQ", "rZAB",
              "Hermes/CRAQ", "Hermes/ZAB"});
    const std::vector<double> ratios{0.0, 0.01, 0.05, 0.20, 0.50, 0.75,
                                     1.00};
    for (double ratio : ratios) {
        double mops[3] = {0, 0, 0};
        int i = 0;
        for (app::Protocol protocol :
             {app::Protocol::Hermes, app::Protocol::Craq,
              app::Protocol::Zab}) {
            app::DriverConfig driver = standardDriver(ratio, zipf_theta);
            mops[i++] = runPoint(protocol, 5, driver).throughputMops;
        }
        printRow({fmt(ratio * 100, 0), fmt(mops[0]), fmt(mops[1]),
                  fmt(mops[2]), fmt(mops[0] / std::max(mops[1], 1e-9), 2),
                  fmt(mops[0] / std::max(mops[2], 1e-9), 2)});
    }
}

} // namespace

int
main()
{
    std::printf("Figure 5: throughput (MReq/s) vs write ratio "
                "[5 nodes, 32B values, 100k keys]\n"
                "(row 0%% = the read-only parity point of section 6.1; "
                "per-peer batching on at the cost model's default "
                "window, cf. bench_ablation_opts for the on/off sweep)\n");
    sweep("Figure 5a: uniform", 0.0);
    sweep("Figure 5b: skewed (zipf 0.99)", 0.99);
    return 0;
}
