/**
 * @file
 * google-benchmark microbenchmarks of the substrates: KVS operations,
 * timestamp comparisons, Zipfian sampling, histogram recording, event
 * queue throughput, message serialization. These establish that the
 * simulation substrate itself is not the bottleneck of the figure
 * benchmarks and give per-operation costs for re-calibrating the cost
 * model on new hardware.
 */

#include <benchmark/benchmark.h>

#include "common/histogram.hh"
#include "common/random.hh"
#include "common/timestamp.hh"
#include "hermes/messages.hh"
#include "sim/event_queue.hh"
#include "store/kvs.hh"

namespace
{

using namespace hermes;

void
BM_KvsRead(benchmark::State &state)
{
    store::KvStore kvs(1 << 16, 64);
    for (Key k = 0; k < 10000; ++k)
        kvs.withKey(k, [](store::KeyRecord &rec) { rec.setValue("value"); });
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kvs.read(rng.nextBounded(10000)));
    }
}
BENCHMARK(BM_KvsRead);

void
BM_KvsWrite(benchmark::State &state)
{
    store::KvStore kvs(1 << 16, 64);
    Rng rng(2);
    std::string value(32, 'x');
    for (auto _ : state) {
        kvs.withKey(rng.nextBounded(10000), [&](store::KeyRecord &rec) {
            rec.meta().ts.version += 1;
            rec.setValue(value);
        });
    }
}
BENCHMARK(BM_KvsWrite);

void
BM_KvsReadUnderContention(benchmark::State &state)
{
    static store::KvStore kvs(1 << 12, 64);
    if (state.thread_index() == 0) {
        for (Key k = 0; k < 64; ++k)
            kvs.withKey(k, [](store::KeyRecord &rec) { rec.setValue("v"); });
    }
    Rng rng(3 + state.thread_index());
    for (auto _ : state) {
        Key k = rng.nextBounded(64);
        if (state.thread_index() % 4 == 0) {
            kvs.withKey(k, [](store::KeyRecord &rec) {
                rec.meta().ts.version += 1;
            });
        } else {
            benchmark::DoNotOptimize(kvs.read(k));
        }
    }
}
BENCHMARK(BM_KvsReadUnderContention)->Threads(4);

void
BM_TimestampCompare(benchmark::State &state)
{
    Rng rng(4);
    Timestamp a{static_cast<uint32_t>(rng.next()), 1};
    Timestamp b{static_cast<uint32_t>(rng.next()), 2};
    for (auto _ : state) {
        benchmark::DoNotOptimize(a < b);
        a.version += 1;
    }
}
BENCHMARK(BM_TimestampCompare);

void
BM_ZipfianSample(benchmark::State &state)
{
    ZipfianGenerator zipf(1000000, 0.99);
    Rng rng(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next(rng));
}
BENCHMARK(BM_ZipfianSample);

void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram histogram;
    Rng rng(6);
    for (auto _ : state)
        histogram.record(rng.nextBounded(1000000));
}
BENCHMARK(BM_HistogramRecord);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue queue;
    uint64_t counter = 0;
    TimeNs t = 0;
    for (auto _ : state) {
        queue.scheduleAt(++t, [&counter] { ++counter; });
        queue.runOne();
    }
    benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_InvEncodeDecode(benchmark::State &state)
{
    proto::registerHermesCodecs();
    proto::InvMsg inv;
    inv.key = 42;
    inv.ts = {7, 3};
    inv.value = std::string(state.range(0), 'v');
    std::vector<uint8_t> bytes;
    for (auto _ : state) {
        bytes.clear();
        net::encodeMessage(inv, bytes);
        benchmark::DoNotOptimize(
            net::decodeMessage(bytes.data(), bytes.size()));
    }
}
BENCHMARK(BM_InvEncodeDecode)->Arg(32)->Arg(1024);

} // namespace

BENCHMARK_MAIN();
