/**
 * @file
 * Fault-tolerance walkthrough: a replica crashes mid-write, the reliable
 * membership detects it, survivors replay the interrupted write from the
 * INV-propagated value, and the cluster resumes — the paper's §3.4 story
 * (and Figure 9's mechanism), narrated step by step.
 */

#include <cstdio>

#include "app/cluster.hh"
#include "hermes/key_state.hh"

using namespace hermes;

namespace
{

const char *
stateName(app::SimCluster &cluster, NodeId node, Key key)
{
    return proto::keyStateName(cluster.replica(node).hermes()->keyState(key));
}

} // namespace

int
main()
{
    app::ClusterConfig config;
    config.protocol = app::Protocol::Hermes;
    config.nodes = 5;
    config.replica.enableRm = true;
    config.replica.rmConfig.heartbeatInterval = 5_ms;
    config.replica.rmConfig.failureTimeout = 150_ms; // the paper's Fig 9
    config.replica.rmConfig.leaseDuration = 20_ms;
    app::SimCluster cluster(config);
    cluster.start();
    cluster.runFor(10_ms);
    std::printf("t=%3llums  cluster of 5 up, view %s\n",
                (unsigned long long)(cluster.now() / 1_ms),
                cluster.replica(0).hermes()->view().toString().c_str());

    // A committed write, then a write whose VALs we kill together with
    // its coordinator: key stays Invalid at the survivors.
    cluster.writeSync(0, 7, "v0");
    cluster.runtime().network().setDropFilter(
        [](NodeId src, NodeId, const net::MessagePtr &msg) {
            return src == 4 && msg->type() == net::MsgType::HermesVal;
        });
    cluster.writeSync(4, 7, "v1-from-node4");
    cluster.crash(4);
    std::printf("t=%3llums  node 4 wrote key 7 = 'v1-from-node4', its VALs "
                "were lost, and it crashed\n",
                (unsigned long long)(cluster.now() / 1_ms));
    std::printf("           key 7 at node 0: %s, node 1: %s\n",
                stateName(cluster, 0, 7), stateName(cluster, 1, 7));

    // A read at a survivor stalls, then replays the dead node's write.
    bool read_done = false;
    Value read_value;
    cluster.read(0, 7, [&](const Value &v) {
        read_done = true;
        read_value = v;
    });
    cluster.runFor(2_ms);
    std::printf("t=%3llums  read of key 7 at node 0: %s\n",
                (unsigned long long)(cluster.now() / 1_ms),
                read_done ? "completed" : "stalled (key Invalid)");
    cluster.runFor(10_ms);
    std::printf("t=%3llums  after mlt node 0 started a write replay "
                "(replays=%llu), but the replay itself must wait for the "
                "dead node's ACK until the membership is updated (3.4)\n",
                (unsigned long long)(cluster.now() / 1_ms),
                (unsigned long long)
                    cluster.replica(0).hermes()->stats().replaysStarted);

    // Meanwhile writes that need node 4's ACK block until the m-update.
    bool blocked_write_done = false;
    cluster.write(1, 8, "blocked", [&] { blocked_write_done = true; });
    cluster.runFor(50_ms);
    std::printf("t=%3llums  write at node 1 %s (waiting for node 4's ACK)\n",
                (unsigned long long)(cluster.now() / 1_ms),
                blocked_write_done ? "committed?!" : "still blocked");

    cluster.runFor(250_ms); // failure timeout + lease + Paxos m-update
    std::printf("t=%3llums  m-update done: view %s; blocked write %s; "
                "stalled read -> '%s'\n",
                (unsigned long long)(cluster.now() / 1_ms),
                cluster.replica(0).hermes()->view().toString().c_str(),
                blocked_write_done ? "committed" : "STILL BLOCKED (bug)",
                read_done ? read_value.c_str() : "STILL STALLED (bug)");

    // Back to normal operation among 4 replicas.
    bool ok = cluster.writeSync(0, 9, "post-failure");
    std::printf("t=%3llums  new write after recovery: %s; key 9 at node 3: "
                "'%s'\n",
                (unsigned long long)(cluster.now() / 1_ms),
                ok ? "committed" : "failed",
                cluster.readSync(3, 9).value_or("?").c_str());
    return blocked_write_done && ok ? 0 : 1;
}
