/**
 * @file
 * A real-network deployment: 3 Hermes replicas on localhost TCP (Wings
 * framing with opportunistic batching + credit flow control), serving
 * external blocking clients — the library as an adoptable KV service.
 */

#include <chrono>
#include <cstdio>

#include "app/tcp_service.hh"

using namespace hermes;

int
main()
{
    net::TcpConfig tcp;
    tcp.basePort = 19750;
    app::ReplicaOptions options;
    options.maxValueSize = 256;
    options.hermesConfig.mlt = 50_ms;
    app::TcpKvService service(app::Protocol::Hermes, 3, options, tcp);
    service.start();
    std::printf("3 Hermes replicas listening on ports %u, %u, %u\n",
                service.portOf(0), service.portOf(1), service.portOf(2));

    app::KvClient alice(service.portOf(0));
    app::KvClient bob(service.portOf(2));
    if (!alice.connected() || !bob.connected()) {
        std::printf("clients failed to connect\n");
        return 1;
    }

    alice.write(1, "written-via-node-0");
    std::printf("alice wrote key 1 at replica 0\n");
    std::printf("bob reads key 1 at replica 2: '%s'\n",
                bob.read(1).value_or("?").c_str());

    bool locked = bob.cas(50, "", "bob").value_or(false);
    bool contended = alice.cas(50, "", "alice").value_or(true);
    std::printf("bob acquires lock: %s; alice's contending CAS: %s\n",
                locked ? "yes" : "no", contended ? "yes?!" : "rejected");

    // A quick closed-loop throughput probe over real sockets.
    constexpr int kOps = 2000;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i)
        alice.write(100 + i % 50, "payload-" + std::to_string(i));
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    std::printf("%d sequential writes over TCP: %.0f ops/s "
                "(%.0f us/op round trip)\n",
                kOps, kOps / elapsed, elapsed / kOps * 1e6);
    std::printf("final read-back: '%s'\n",
                bob.read(100 + (kOps - 1) % 50).value_or("?").c_str());
    service.stop();
    std::printf("service stopped.\n");
    return 0;
}
