/**
 * @file
 * A real-network deployment: 3 Hermes replicas on localhost TCP (Wings
 * framing with opportunistic batching + credit flow control), serving
 * external blocking clients — the library as an adoptable KV service.
 * Part two shards the key space: a ShardedTcpDeployment of 2×3 replicas
 * behind an address map negotiated at client HELLO, with a deliberately
 * stale client healing itself through the WrongShard reroute loop.
 */

#include <chrono>
#include <cstdio>

#include "app/cluster.hh"
#include "app/tcp_service.hh"

using namespace hermes;

int
main()
{
    net::TcpConfig tcp;
    tcp.basePort = 19750;
    app::ReplicaOptions options;
    options.maxValueSize = 256;
    options.hermesConfig.mlt = 50_ms;
    app::TcpKvService service(app::Protocol::Hermes, 3, options, tcp);
    service.start();
    std::printf("3 Hermes replicas listening on ports %u, %u, %u\n",
                service.portOf(0), service.portOf(1), service.portOf(2));

    app::KvClient alice(service.portOf(0));
    app::KvClient bob(service.portOf(2));
    if (!alice.connected() || !bob.connected()) {
        std::printf("clients failed to connect\n");
        return 1;
    }

    alice.write(1, "written-via-node-0");
    std::printf("alice wrote key 1 at replica 0\n");
    std::printf("bob reads key 1 at replica 2: '%s'\n",
                bob.read(1).value_or("?").c_str());

    bool locked = bob.cas(50, "", "bob").value_or(false);
    bool contended = alice.cas(50, "", "alice").value_or(true);
    std::printf("bob acquires lock: %s; alice's contending CAS: %s\n",
                locked ? "yes" : "no", contended ? "yes?!" : "rejected");

    // A quick closed-loop throughput probe over real sockets.
    constexpr int kOps = 2000;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i)
        alice.write(100 + i % 50, "payload-" + std::to_string(i));
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    std::printf("%d sequential writes over TCP: %.0f ops/s "
                "(%.0f us/op round trip)\n",
                kOps, kOps / elapsed, elapsed / kOps * 1e6);
    std::printf("final read-back: '%s'\n",
                bob.read(100 + (kOps - 1) % 50).value_or("?").c_str());
    service.stop();
    std::printf("service stopped.\n");

    // ---- Sharded deployment: 2 shards x 3 replicas, one process ----
    std::printf("\nstarting a 2-shard deployment (3 replicas each)...\n");
    tcp.basePort = 19800;
    app::ShardedTcpDeployment deployment(app::Protocol::Hermes, 2, 3,
                                         options, tcp);
    deployment.start();
    for (uint32_t s = 0; s < 2; ++s)
        std::printf("  shard %u on ports %u-%u\n", s,
                    deployment.portOf(s, 0), deployment.portOf(s, 2));

    // A fresh client learns the full shard -> address map at HELLO and
    // routes every op to the group owning its key.
    app::KvClient carol(deployment.portOf(0, 0));
    carol.write(7, "routed-to-shard-" + std::to_string(
                       app::shardOfKey(7, deployment.numShards())));
    std::printf("carol wrote key 7 (owner: shard %u): '%s'\n",
                app::shardOfKey(7, deployment.numShards()),
                carol.read(7).value_or("?").c_str());

    // A stale client that still believes the key space is unsharded: its
    // first op lands on the wrong group, is rejected with WrongShard plus
    // the authoritative map, and the client reconnects to the real owner
    // and retries -- the reroute loop in action.
    app::KvClient stale(deployment.portOf(1, 0), /*num_shards=*/1);
    std::string healed_read = stale.read(7).value_or("?");
    std::printf("stale client (thinks S=1) reads key 7: '%s' "
                "(healed to S=%zu after one redirect)\n",
                healed_read.c_str(), stale.numShards());
    deployment.stop();
    std::printf("deployment stopped.\n");
    return 0;
}
