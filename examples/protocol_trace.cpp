/**
 * @file
 * Message-level walkthroughs of the paper's protocol figures:
 *
 *  - Figure 2: a single write (INV -> ACKs -> VAL, commit after one
 *    exposed round-trip);
 *  - Figure 4: two concurrent writes to one key resolved by timestamp,
 *    then a VAL loss + coordinator crash healed by a write replay.
 *
 * Every protocol message crossing the simulated fabric is printed with
 * its timestamp, so the output reads like the paper's figures.
 */

#include <cstdio>

#include "app/cluster.hh"
#include "hermes/key_state.hh"
#include "hermes/messages.hh"

using namespace hermes;

namespace
{

/** Install a network observer that narrates Hermes traffic. */
void
traceMessages(app::SimCluster &cluster, bool &enabled)
{
    cluster.runtime().network().setDropFilter(
        [&cluster, &enabled](NodeId src, NodeId dst,
                             const net::MessagePtr &msg) {
            if (!enabled)
                return false;
            const char *name = net::msgTypeName(msg->type());
            std::string detail;
            if (msg->type() == net::MsgType::HermesInv) {
                auto &inv = static_cast<const proto::InvMsg &>(*msg);
                detail = "key=" + std::to_string(inv.key) + " ts="
                         + inv.ts.toString() + " value='" + inv.value.str() + "'";
            } else if (msg->type() == net::MsgType::HermesAck) {
                auto &ack = static_cast<const proto::AckMsg &>(*msg);
                detail = "key=" + std::to_string(ack.key) + " ts="
                         + ack.ts.toString();
            } else if (msg->type() == net::MsgType::HermesVal) {
                auto &val = static_cast<const proto::ValMsg &>(*msg);
                detail = "key=" + std::to_string(val.key) + " ts="
                         + val.ts.toString();
            } else {
                return false; // not a Hermes message (e.g. RM traffic)
            }
            std::printf("  t=%6.2fus  %u -> %u  %-4s %s\n",
                        cluster.now() / 1e3, src, dst, name,
                        detail.c_str());
            return false; // observe only, never drop
        });
}

void
states(app::SimCluster &cluster, Key key)
{
    std::printf("  key %llu states:", (unsigned long long)key);
    for (NodeId n = 0; n < cluster.numNodes(); ++n) {
        if (!cluster.runtime().alive(n)) {
            std::printf("  node%u=DEAD", n);
            continue;
        }
        std::printf("  node%u=%s", n,
                    proto::keyStateName(
                        cluster.replica(n).hermes()->keyState(key)));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    app::ClusterConfig config;
    config.protocol = app::Protocol::Hermes;
    config.nodes = 3;
    config.cost.netJitterNs = 0; // textbook-clean message orderings
    app::SimCluster cluster(config);
    cluster.start();
    bool tracing = true;
    traceMessages(cluster, tracing);

    std::printf("=== Figure 2: a write of key K=1 (value 3) from node 1 "
                "===\n");
    bool committed = false;
    cluster.write(1, 1, "3", [&] {
        committed = true;
        std::printf("  t=%6.2fus  node 1: write COMMITS (all ACKs "
                    "gathered; VAL is off the critical path)\n",
                    cluster.now() / 1e3);
    });
    cluster.runFor(20_us);
    states(cluster, 1);

    std::printf("\n=== Figure 4: concurrent writes A=1 (node 0) and A=3 "
                "(node 2) ===\n");
    cluster.write(0, 4, "A=1", [&] {
        std::printf("  t=%6.2fus  node 0: write A=1 commits (linearized "
                    "FIRST: lower cid)\n",
                    cluster.now() / 1e3);
    });
    cluster.write(2, 4, "A=3", [&] {
        std::printf("  t=%6.2fus  node 2: write A=3 commits (wins the "
                    "conflict: higher cid)\n",
                    cluster.now() / 1e3);
    });
    cluster.runFor(30_us);
    states(cluster, 4);
    std::printf("  final value everywhere: '%s'\n",
                cluster.readSync(0, 4).value_or("?").c_str());

    std::printf("\n=== Figure 4 (cont.): VAL loss + crash healed by a "
                "write replay ===\n");
    cluster.runtime().network().setDropFilter(
        [&cluster](NodeId src, NodeId, const net::MessagePtr &msg) {
            if (msg->type() == net::MsgType::HermesVal && src == 2) {
                std::printf("  t=%6.2fus  (network drops node 2's VAL)\n",
                            cluster.now() / 1e3);
                return true;
            }
            return false;
        });
    cluster.writeSync(2, 4, "A=5");
    cluster.crash(2);
    std::printf("  node 2 crashed; its VALs were lost\n");
    states(cluster, 4);
    membership::MembershipView view{2, {0, 1}};
    cluster.replica(0).injectView(view);
    cluster.replica(1).injectView(view);
    std::printf("  m-update applied: view %s\n", view.toString().c_str());

    tracing = false; // silence the observer closure's dangling state
    auto value = cluster.readSync(0, 4, 50_ms);
    std::printf("  read at node 0 stalls, replays node 2's write, then "
                "returns '%s' (replays=%llu)\n",
                value.value_or("?").c_str(),
                (unsigned long long)
                    cluster.replica(0).hermes()->stats().replaysStarted);
    states(cluster, 4);
    return 0;
}
