/**
 * @file
 * A replicated lock service on Hermes RMWs — one of the paper's
 * motivating applications (§2.1 name-checks Zookeeper and Chubby).
 *
 * Locks are keys: acquire = CAS("", owner), release = CAS(owner, "").
 * Hermes guarantees that among concurrent acquirers at most one CAS
 * commits (§3.6), which is exactly mutual exclusion. The example runs
 * contending simulated clients against 3 replicas and verifies that the
 * critical section was never occupied twice.
 */

#include <cstdio>
#include <string>

#include "app/cluster.hh"

using namespace hermes;

namespace
{

constexpr Key kLock = 9000;
constexpr Key kSharedCounter = 9001;

struct LockClient
{
    app::SimCluster &cluster;
    NodeId node;
    std::string name;
    int sectionsWanted;
    int sectionsDone = 0;
    int acquireAttempts = 0;

    void
    tryAcquire()
    {
        if (sectionsDone >= sectionsWanted)
            return;
        ++acquireAttempts;
        cluster.cas(node, kLock, "", name,
                    [this](bool acquired, const Value &) {
                        if (acquired) {
                            enterCriticalSection();
                        } else {
                            // Back off and retry.
                            cluster.runtime().events().scheduleAfter(
                                5_us, [this] { tryAcquire(); });
                        }
                    });
    }

    void
    enterCriticalSection()
    {
        // Unprotected read-modify-write on a SECOND key: safe only
        // because the lock serializes us.
        cluster.read(node, kSharedCounter, [this](const Value &v) {
            int counter = v.empty() ? 0 : std::stoi(v);
            cluster.write(node, kSharedCounter,
                          std::to_string(counter + 1),
                          [this] { release(); });
        });
    }

    void
    release()
    {
        cluster.cas(node, kLock, name, "",
                    [this](bool released, const Value &) {
                        if (!released)
                            std::printf("BUG: %s failed to release!\n",
                                        name.c_str());
                        ++sectionsDone;
                        tryAcquire();
                    });
    }
};

} // namespace

int
main()
{
    app::ClusterConfig config;
    config.protocol = app::Protocol::Hermes;
    config.nodes = 3;
    app::SimCluster cluster(config);
    cluster.start();

    constexpr int kClients = 6;
    constexpr int kSectionsEach = 25;
    std::vector<std::unique_ptr<LockClient>> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.push_back(std::make_unique<LockClient>(LockClient{
            cluster, static_cast<NodeId>(c % 3),
            "client-" + std::to_string(c), kSectionsEach}));
    }
    for (auto &client : clients) {
        cluster.runtime().events().scheduleAfter(
            0, [&client] { client->tryAcquire(); });
    }
    cluster.runFor(5'000'000'000ull); // plenty of simulated time

    int total_sections = 0;
    for (auto &client : clients) {
        std::printf("%s: %d critical sections (%d acquire attempts)\n",
                    client->name.c_str(), client->sectionsDone,
                    client->acquireAttempts);
        total_sections += client->sectionsDone;
    }
    Value counter = cluster.readSync(0, kSharedCounter).value_or("0");
    std::printf("\ncritical sections entered : %d\n", total_sections);
    std::printf("shared counter (must match): %s\n", counter.c_str());
    std::printf("%s\n", counter == std::to_string(total_sections)
                            ? "MUTUAL EXCLUSION HELD"
                            : "RACE DETECTED — this would be a bug");
    return counter == std::to_string(total_sections) ? 0 : 1;
}
