/**
 * @file
 * Quickstart: spin up a simulated 5-replica Hermes deployment and use
 * the client API — linearizable reads and writes from any replica, plus
 * CAS RMWs.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "app/cluster.hh"

using namespace hermes;

int
main()
{
    // 1. Configure a 5-replica Hermes cluster on the simulated fabric.
    app::ClusterConfig config;
    config.protocol = app::Protocol::Hermes;
    config.nodes = 5;
    app::SimCluster cluster(config);
    cluster.start();
    std::printf("started a %zu-replica HermesKV cluster\n",
                cluster.numNodes());

    // 2. Writes can be coordinated by ANY replica (decentralized).
    cluster.writeSync(/*node=*/0, /*key=*/1, "hello");
    cluster.writeSync(/*node=*/3, /*key=*/2, "world");

    // 3. Reads are local at every replica and linearizable.
    for (NodeId n = 0; n < 5; ++n) {
        std::printf("replica %u reads: key1='%s' key2='%s'\n", n,
                    cluster.readSync(n, 1).value_or("?").c_str(),
                    cluster.readSync(n, 2).value_or("?").c_str());
    }

    // 4. Single-key RMWs: compare-and-swap, usable from any replica.
    bool acquired = cluster.casSync(2, /*key=*/100, "", "owner-A")
                        .value_or(false);
    bool stolen = cluster.casSync(4, /*key=*/100, "", "owner-B")
                      .value_or(false);
    std::printf("CAS acquire by A: %s; concurrent steal by B: %s\n",
                acquired ? "success" : "failed",
                stolen ? "success" : "failed (as it must)");

    // 5. Inspect protocol statistics.
    const proto::HermesStats &stats = cluster.replica(0).hermes()->stats();
    std::printf("replica 0: %llu reads, %llu writes committed, "
                "%llu RMWs committed\n",
                (unsigned long long)stats.readsCompleted,
                (unsigned long long)stats.writesCommitted,
                (unsigned long long)stats.rmwsCommitted);
    std::printf("quickstart done.\n");
    return 0;
}
